"""Differential tests: the parallel backend vs serial campaign execution.

The parallel execution backend must be a pure performance feature: for any
workload, the merged trace matrix — every iteration record, every per-feature
snapshot — and everything derived from it (contingency tables, chi-squared /
Cramér's V) must be bit-identical to a serial campaign, regardless of worker
count or completion order.
"""

import pytest

from repro.sampler import (
    MicroSampler,
    Workload,
    WorkloadError,
    build_contingency_table,
    measure_association,
    resolve_jobs,
    run_campaign,
)
from repro.sampler.exec_backend import RunTask, execute_tasks
from repro.uarch import MEGA_BOOM, SMALL_BOOM
from repro.workloads.chacha import make_chacha20
from repro.workloads.memcmp import make_ct_memcmp


def campaign_signature(campaign):
    """Everything analysis-relevant about a campaign, as plain values."""
    return [
        (
            record.index, record.label, record.run_index, record.ordinal,
            record.start_cycle, record.end_cycle,
            {fid: fi for fid, fi in record.features.items()},
        )
        for record in campaign.iterations
    ]


def association_signature(campaign):
    """Contingency tables and association stats per feature, per hash kind."""
    labels = [record.label for record in campaign.iterations]
    out = {}
    for notiming in (False, True):
        for feature_id in campaign.iterations[0].features:
            hashes = [
                record.features[feature_id].snapshot_hash_notiming if notiming
                else record.features[feature_id].snapshot_hash
                for record in campaign.iterations
            ]
            table = build_contingency_table(labels, hashes)
            association = measure_association(table)
            out[(feature_id, notiming)] = (
                table, association.cramers_v, association.p_value,
                association.chi_squared, association.dof,
            )
    return out


def assert_campaigns_identical(serial, parallel):
    assert campaign_signature(serial) == campaign_signature(parallel)
    assert association_signature(serial) == association_signature(parallel)
    assert [r.exit_code for r in serial.runs] == \
           [r.exit_code for r in parallel.runs]
    assert [r.stats for r in serial.runs] == [r.stats for r in parallel.runs]


def test_memcmp_campaign_parallel_is_bit_identical():
    workload = make_ct_memcmp(n_pairs=4, seed=5, n_runs=4)
    serial = run_campaign(workload, MEGA_BOOM, keep_raw=("ROB-PC",))
    parallel = run_campaign(workload, MEGA_BOOM, keep_raw=("ROB-PC",), jobs=4)
    assert_campaigns_identical(serial, parallel)
    # keep_raw rows survive the worker round trip identically too.
    for a, b in zip(serial.iterations, parallel.iterations):
        assert a.features["ROB-PC"].rows == b.features["ROB-PC"].rows
        assert a.features["ROB-PC"].rows is not None


def test_chacha_campaign_parallel_is_bit_identical():
    workload = make_chacha20(n_keys=4, n_blocks=1, seed=6)
    serial = run_campaign(workload, MEGA_BOOM)
    parallel = run_campaign(workload, MEGA_BOOM, jobs=4)
    assert_campaigns_identical(serial, parallel)


def test_more_jobs_than_inputs():
    workload = make_ct_memcmp(n_pairs=4, seed=5, n_runs=2)
    serial = run_campaign(workload, SMALL_BOOM)
    parallel = run_campaign(workload, SMALL_BOOM, jobs=8)
    assert_campaigns_identical(serial, parallel)


def test_pipeline_report_identical_across_backends():
    workload = make_ct_memcmp(n_pairs=4, seed=5, n_runs=4)
    serial = MicroSampler(MEGA_BOOM).analyze(workload)
    parallel = MicroSampler(MEGA_BOOM, jobs=4).analyze(workload)
    assert serial.leaky_units == parallel.leaky_units
    assert serial.cramers_v_by_unit() == parallel.cramers_v_by_unit()
    assert serial.cramers_v_by_unit_notiming() == \
        parallel.cramers_v_by_unit_notiming()
    for feature_id, unit in serial.units.items():
        other = parallel.units[feature_id]
        assert unit.association.p_value == other.association.p_value
        assert unit.association.chi_squared == other.association.chi_squared


def test_worker_failure_propagates_as_workload_error():
    bad = Workload(
        name="bad",
        source=".text\nmain:\n li a0, 1\n li a7, 93\n ecall",
        inputs=[{} for _ in range(3)],
    )
    with pytest.raises(WorkloadError, match="exited"):
        run_campaign(bad, SMALL_BOOM, jobs=3)


def test_resolve_jobs():
    assert resolve_jobs(1) == 1
    assert resolve_jobs(7) == 7
    assert resolve_jobs(0) >= 1
    assert resolve_jobs(None) >= 1
    with pytest.raises(ValueError):
        resolve_jobs(-2)


def test_execute_tasks_preserves_task_order():
    # Mixed-size programs: the short ones finish first on a pool, but the
    # outputs must still come back in submission order.
    def program(n_nops):
        source = ".text\nmain:\n" + " nop\n" * n_nops + " li a0, 0\n li a7, 93\n ecall"
        return Workload(name=f"nops{n_nops}", source=source, inputs=[{}])

    tasks = []
    for index, n_nops in enumerate([400, 5, 200, 1]):
        workload = program(n_nops)
        tasks.append(RunTask(
            run_index=index,
            workload_name=workload.name,
            program=workload.assemble(),
            config=SMALL_BOOM,
        ))
    outputs = execute_tasks(tasks, jobs=4)
    assert [output.run_index for output in outputs] == [0, 1, 2, 3]
    committed = [output.run.stats.committed for output in outputs]
    assert committed[0] > committed[2] > committed[1] > committed[3]
