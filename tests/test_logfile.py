"""Trace-log persistence and offline-parser tests."""

import json

import pytest

from repro.kernel import ProxyKernel
from repro.sampler.runner import patch_program
from repro.trace import MicroarchTracer, TraceError
from repro.trace.logfile import TraceLogWriter, parse_trace_log, read_trace_log
from repro.uarch import MEGA_BOOM, Core
from repro.workloads.modexp import make_sam_ct


def _simulate_both(tmp_path, features=None, suffix=".jsonl"):
    """Run one workload twice: live tracer and trace-log writer."""
    workload = make_sam_ct(n_keys=1, seed=19)
    program = patch_program(workload.assemble(), workload.inputs[0])
    live = MicroarchTracer(features=features)
    Core(program, MEGA_BOOM, kernel=ProxyKernel(), tracer=live).run()
    path = tmp_path / f"trace{suffix}"
    with TraceLogWriter(path, features=features) as writer:
        writer.begin_run(0)
        Core(program, MEGA_BOOM, kernel=ProxyKernel(), tracer=writer).run()
    return live, path


def test_offline_parse_matches_live_tracer(tmp_path):
    live, path = _simulate_both(tmp_path)
    offline = parse_trace_log(path)
    assert len(offline) == len(live.iterations) == 32
    for a, b in zip(live.iterations, offline):
        assert a.label == b.label
        assert a.start_cycle == b.start_cycle
        assert a.end_cycle == b.end_cycle
        for feature_id, data in a.features.items():
            replayed = b.features[feature_id]
            assert data.snapshot_hash == replayed.snapshot_hash
            assert data.snapshot_hash_notiming == replayed.snapshot_hash_notiming
            assert data.values == replayed.values
            assert data.order == replayed.order


def test_gzip_roundtrip(tmp_path):
    live, path = _simulate_both(tmp_path, features=["ROB-OCPNCY"],
                                suffix=".jsonl.gz")
    offline = parse_trace_log(path)
    assert [r.features["ROB-OCPNCY"].snapshot_hash for r in offline] == \
        [r.features["ROB-OCPNCY"].snapshot_hash for r in live.iterations]


def test_feature_subset_reanalysis(tmp_path):
    _live, path = _simulate_both(tmp_path)
    subset = parse_trace_log(path, features=["SQ-ADDR", "EUU-MUL"])
    assert set(subset[0].features) == {"SQ-ADDR", "EUU-MUL"}


def test_keep_raw_retains_rows(tmp_path):
    _live, path = _simulate_both(tmp_path, features=["ROB-OCPNCY"])
    records = parse_trace_log(path, keep_raw=True)
    assert records[0].features["ROB-OCPNCY"].rows is not None
    records = parse_trace_log(path)
    assert records[0].features["ROB-OCPNCY"].rows is None


def test_unknown_feature_request_rejected(tmp_path):
    _live, path = _simulate_both(tmp_path, features=["ROB-OCPNCY"])
    with pytest.raises(TraceError, match="not present"):
        parse_trace_log(path, features=["SQ-ADDR"])


def test_writer_rejects_unknown_feature(tmp_path):
    with pytest.raises(ValueError, match="unknown feature"):
        TraceLogWriter(tmp_path / "x.jsonl", features=["BOGUS"])


def test_header_required(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text(json.dumps({"t": "cycle"}) + "\n")
    with pytest.raises(TraceError, match="missing header"):
        parse_trace_log(path)


def test_truncated_log_detected(tmp_path):
    _live, path = _simulate_both(tmp_path, features=["ROB-OCPNCY"])
    lines = path.read_text().splitlines()
    # Chop the log inside the last iteration.
    last_end = max(i for i, line in enumerate(lines) if '"iter.end"' in line)
    path.write_text("\n".join(lines[:last_end]) + "\n")
    with pytest.raises(TraceError, match="open iteration"):
        parse_trace_log(path)


def test_log_events_structure(tmp_path):
    _live, path = _simulate_both(tmp_path, features=["ROB-OCPNCY"])
    events = list(read_trace_log(path))
    kinds = {e["t"] for e in events}
    assert kinds == {"header", "run", "marker", "cycle"}
    markers = [e["m"] for e in events if e["t"] == "marker"]
    assert markers[0] == "roi.begin" and markers[-1] == "roi.end"
    assert markers.count("iter.begin") == 32


def test_rows_outside_roi_not_logged(tmp_path):
    _live, path = _simulate_both(tmp_path, features=["ROB-OCPNCY"])
    events = list(read_trace_log(path))
    first_cycle_event = next(e for e in events if e["t"] == "cycle")
    roi_begin = next(e for e in events
                     if e["t"] == "marker" and e["m"] == "roi.begin")
    assert first_cycle_event["c"] >= roi_begin["c"]
