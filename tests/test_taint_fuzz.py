"""Property-fuzz the taint engine against a two-run architectural oracle.

The soundness property under test: perturb exactly one input byte and
re-execute; every architectural state byte that changes between the two
runs must have been marked tainted by a taint run that seeded exactly that
input byte — unless the engine *escalated* (secret-dependent control or
address flow), which voids per-byte exoneration by design.  A control-flow
divergence between the runs therefore demands an escalation verdict.

The oracle is exact (it observes real differences), the engine is a sound
over-approximation, so the check is one-directional: tainted-but-equal is
fine, different-but-untainted is a propagation-rule bug.

Programs come from the Cascade-style fuzz generators: straight-line bodies
isolate the per-mnemonic ALU/memory rules, branchy bodies exercise the
escalation and implicit-flow paths.  A third suite pins the lane-parallel
batch engine to the scalar one over ROI-wrapped fuzz programs.
"""

from __future__ import annotations

import random

import pytest

from repro.isa.assembler import assemble
from repro.isa.interpreter import Interpreter
from repro.kernel.proxy_kernel import ProxyKernel
from repro.taint import TaintInterpreter, taint_run, taint_runs_batch
from repro.workloads.fuzz import (
    _SCRATCH_BYTES,
    _STRAIGHTLINE_SCRATCH,
    generate_program,
    generate_straightline_program,
)

MAX_STEPS = 500_000


def _final_state(program, max_steps=MAX_STEPS):
    """(pc trace, final regs, final data image) of one architectural run."""
    kernel = ProxyKernel()
    interp = Interpreter(program, syscall_handler=kernel.handle_ecall)
    pcs = []
    while not interp.halted and interp.steps < max_steps:
        pcs.append(interp.pc)
        interp.step()
    assert interp.halted, "fuzz program did not halt"
    regs = [interp.read_reg(num) for num in range(32)]
    data = interp.memory.read_bytes(program.data_base, len(program.data))
    return pcs, regs, data


def _patch(program, blob: bytes):
    from repro.sampler.runner import patch_program

    return patch_program(program, {"scratch": blob})


def _check_oracle(source: str, scratch_bytes: int, seed: int) -> None:
    """One fuzz case: taint one byte, flip it, diff the two executions."""
    program = assemble(source, entry="main")
    rng = random.Random(seed * 7919 + 13)
    blob = bytes(rng.getrandbits(8) for _ in range(scratch_bytes))
    offset = rng.randrange(scratch_bytes)
    flipped = bytearray(blob)
    flipped[offset] ^= 1 + rng.randrange(255)
    base = _patch(program, blob)
    perturbed = _patch(program, bytes(flipped))

    taint = TaintInterpreter(base)
    taint.taint_bytes(base.symbols["scratch"] + offset, 1)
    taint.run(max_steps=MAX_STEPS)

    pcs_a, regs_a, data_a = _final_state(base)
    pcs_b, regs_b, data_b = _final_state(perturbed)

    if pcs_a != pcs_b:
        assert taint.escalated, (
            f"seed {seed}: control flow diverged on the perturbed byte "
            f"(offset {offset}) but the taint engine did not escalate")
        return
    if taint.escalated:
        # Escalation is allowed to be conservative (e.g. a tainted branch
        # whose both targets happen to converge); per-byte exoneration is
        # void, so there is nothing further to check.
        return
    for num in range(32):
        diff = regs_a[num] ^ regs_b[num]
        for byte in range(8):
            if (diff >> (8 * byte)) & 0xFF:
                assert taint.reg_taint[num] & (1 << byte), (
                    f"seed {seed}: x{num} byte {byte} differs between runs "
                    f"but is not tainted (taint mask "
                    f"{taint.reg_taint[num]:#04x})")
    for index, (byte_a, byte_b) in enumerate(zip(data_a, data_b)):
        if byte_a != byte_b:
            address = program.data_base + index
            assert address in taint.mem_taint, (
                f"seed {seed}: memory byte {address:#x} differs between "
                f"runs but is not tainted")


@pytest.mark.parametrize("seed", range(60))
def test_oracle_straightline(seed):
    source = generate_straightline_program(seed, length=40)
    _check_oracle(source, _STRAIGHTLINE_SCRATCH, seed)


@pytest.mark.parametrize("seed", range(50))
def test_oracle_branchy(seed):
    source = generate_program(seed, blocks=4, block_len=6)
    _check_oracle(source, _SCRATCH_BYTES, seed)


# -- batch-lane equivalence --------------------------------------------------


def _wrap_roi(source: str) -> str:
    """Insert ROI markers around a fuzz program's body.

    ``taint_run`` requires an ROI; the markers go right after the scratch
    base is materialized and right before the exit sequence, so the whole
    randomized body is analyzed.
    """
    lines = source.split("\n")
    begin = lines.index("    la   s0, scratch") + 1
    end = next(index for index, line in enumerate(lines)
               if line == "    li   a7, 93")
    return "\n".join(lines[:begin] + ["    roi.begin"]
                     + lines[begin:end - 1] + ["    roi.end"]
                     + lines[end - 1:])


def _lane_cases(generator, scratch_bytes, seed, n_lanes, **kwargs):
    """One program, ``n_lanes`` input variants (the pipeline's lane shape)."""
    program = assemble(_wrap_roi(generator(seed, **kwargs)), entry="main")
    rng = random.Random(seed * 31 + 5)
    offset = rng.randrange(scratch_bytes)
    programs, spans = [], []
    for _ in range(n_lanes):
        blob = bytes(rng.getrandbits(8) for _ in range(scratch_bytes))
        programs.append(_patch(program, blob))
        spans.append([(program.symbols["scratch"] + offset, 4)])
    return programs, spans


@pytest.mark.parametrize("generator,scratch,kwargs", [
    (generate_straightline_program, _STRAIGHTLINE_SCRATCH, {"length": 30}),
    (generate_program, _SCRATCH_BYTES, {"blocks": 3, "block_len": 5}),
])
@pytest.mark.parametrize("seed", range(4))
def test_batch_lanes_match_scalar(generator, scratch, kwargs, seed):
    """Lane-parallel taint maps are identical to per-lane scalar maps.

    Straight-line lanes genuinely run batched (uniform control flow);
    branchy lanes split on data-dependent branches and fall back to the
    scalar engine — both paths must land on the same maps.
    """
    programs, spans = _lane_cases(generator, scratch, seed, 4, **kwargs)
    batched = taint_runs_batch(programs, spans, lanes=4,
                               max_steps=MAX_STEPS)
    scalar = [taint_run(program, span, max_steps=MAX_STEPS)
              for program, span in zip(programs, spans)]
    for index, (from_batch, from_scalar) in enumerate(zip(batched, scalar)):
        assert from_batch == from_scalar, (
            f"lane {index}: batch and scalar taint maps disagree")
