"""Audit-campaign and bias-corrected-V tests."""

import pytest

from repro.cli import AUDIT_EXPECTATIONS, main
from repro.sampler import (
    ContingencyTable,
    build_contingency_table,
    cramers_v,
    cramers_v_corrected,
    run_audit,
)
from repro.uarch import SMALL_BOOM
from repro.workloads.modexp import make_sam_ct, make_sam_leaky


class TestCorrectedV:
    def _table(self, counts):
        return ContingencyTable(
            classes=tuple(range(len(counts))),
            hashes=tuple(range(len(counts[0]))),
            counts=tuple(tuple(r) for r in counts),
        )

    def test_perfect_association_stays_high(self):
        table = self._table([[50, 0], [0, 50]])
        assert cramers_v_corrected(table) > 0.9

    def test_independent_data_is_zero(self):
        table = self._table([[25, 25], [25, 25]])
        assert cramers_v_corrected(table) == pytest.approx(0.0)

    def test_shrinks_small_sample_bias(self):
        """A sparse near-singular table: raw V is inflated, corrected V
        collapses — the same failure mode the paper gates with p-values."""
        import random
        rng = random.Random(4)
        labels = [rng.randrange(2) for _ in range(24)]
        hashes = list(range(24))  # every observation its own category
        table = build_contingency_table(labels, hashes)
        assert cramers_v(table) == pytest.approx(1.0)
        assert cramers_v_corrected(table) < 0.35

    def test_degenerate_is_zero(self):
        assert cramers_v_corrected(self._table([[5, 5]])) == 0.0


class TestAudit:
    @pytest.fixture(scope="class")
    def audit_result(self):
        workloads = [make_sam_leaky(n_keys=3, seed=3),
                     make_sam_ct(n_keys=3, seed=3)]
        return run_audit(
            workloads, config=SMALL_BOOM,
            expectations={"sam-leaky": True, "sam-ct": False},
        )

    def test_expected_verdicts_pass(self, audit_result):
        assert audit_result.passed
        assert not audit_result.unexpected
        assert [e.name for e in audit_result.entries] == ["sam-leaky",
                                                          "sam-ct"]

    def test_entry_fields(self, audit_result):
        leaky = audit_result.entries[0]
        assert leaky.leakage_detected and leaky.leaky_units
        assert leaky.n_iterations == 96
        assert leaky.seconds > 0

    def test_wrong_expectation_fails(self):
        result = run_audit(
            [make_sam_ct(n_keys=3, seed=3)], config=SMALL_BOOM,
            expectations={"sam-ct": True},  # claim it should leak
        )
        assert not result.passed
        assert result.unexpected[0].name == "sam-ct"

    def test_no_expectations_always_passes(self):
        result = run_audit([make_sam_ct(n_keys=2, seed=3)],
                           config=SMALL_BOOM)
        assert result.passed
        assert result.entries[0].expected is None

    def test_render(self, audit_result):
        text = audit_result.render()
        assert "AUDIT PASSED" in text
        assert "sam-leaky" in text and "expected" in text

    def test_cli_audit_subset(self, capsys):
        code = main(["audit", "sam-ct", "--config", "small", "--inputs", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "AUDIT PASSED" in out

    def test_expectations_cover_full_suite(self):
        from repro.cli import WORKLOADS
        assert set(AUDIT_EXPECTATIONS) == set(WORKLOADS)
        assert AUDIT_EXPECTATIONS["me-v2-safe"] is False
        assert AUDIT_EXPECTATIONS["spectre-v1"] is True
        assert AUDIT_EXPECTATIONS["chacha20"] is False
