"""Regenerate the golden case-study fixtures from the scalar engine.

The scalar (``engine="python"``) path is the authoritative reference
implementation, so golden values are always produced by it; the vectorized
engine is held to the same numbers by the differential tests.  Run from the
repository root::

    PYTHONPATH=src python -m tests.golden.regenerate

and commit the JSON diffs together with whatever intentional change moved
the numbers.
"""

from __future__ import annotations

import json

from repro.sampler import MicroSampler

from tests.golden import (
    GOLDEN_DIR,
    case_workloads,
    localization_case,
    localization_to_golden,
    report_to_golden,
    taint_cases,
    taint_to_golden,
)


def main() -> None:
    for name, (workload, config) in case_workloads().items():
        sampler = MicroSampler(config, engine="python",
                               extract_root_causes_for_leaky=False)
        report = sampler.analyze(workload)
        payload = report_to_golden(report)
        path = GOLDEN_DIR / f"{name}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path.name}: {len(payload['leaky_units'])} leaky units, "
              f"{len(payload['units'])} units")

    from repro.taint import compute_publicness

    for name, factory in taint_cases().items():
        payload = taint_to_golden(compute_publicness(factory()))
        path = GOLDEN_DIR / f"{name}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        merged = payload["merged"]
        print(f"wrote {path.name}: escalated={merged['escalated']}, "
              f"{len(merged['tainted_pcs'])} tainted PCs")

    workload, config, features = localization_case()
    sampler = MicroSampler(config, engine="python", cache=None)
    localization = sampler.localize(workload, features=features)
    payload = localization_to_golden(localization)
    path = GOLDEN_DIR / "localize_ee_memcmp.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path.name}: "
          f"{len(payload['localized_units'])} localized units")


if __name__ == "__main__":
    main()
