"""Golden-value regression fixtures for the paper's case studies.

Each ``<case>.json`` file in this directory pins the scalar (reference)
engine's verdict for one case-study campaign: the sorted leaky-unit set plus
per-unit Cramér's V, bias-corrected V and p-value (and timing-removed V).
``tests/test_case_studies.py`` asserts every fresh report against them to
1e-9, so any change to the simulator, the tracer's hashing, or either
statistics engine that moves a published number is caught as a diff.

The ``taint_*.json`` fixtures pin the secret-taint publicness engine's
merged campaign maps for the memcmp pair — the early-exit variant (must
escalate at the compare branch) and the branchless-safe negative control
(must stay data-only) — so a propagation-rule change that moves an
attribution or flips a prune decision is caught the same way.

Regenerate after an *intentional* change with::

    PYTHONPATH=src python -m tests.golden.regenerate
"""

from __future__ import annotations

import json
from pathlib import Path

GOLDEN_DIR = Path(__file__).parent
GOLDEN_TOLERANCE = 1e-9

#: Per-unit statistics pinned by the fixtures.
GOLDEN_FIELDS = ("cramers_v", "cramers_v_corrected", "p_value")


def case_workloads() -> dict:
    """The case-study campaigns, keyed by golden-fixture name.

    Sizes match the integration tests in ``test_case_studies.py`` exactly —
    the fixtures pin the verdicts of *those* campaigns, not the full-size
    paper runs.
    """
    from repro.uarch import MEGA_BOOM
    from repro.workloads.memcmp import make_ct_memcmp
    from repro.workloads.modexp import (
        make_me_v1_cv,
        make_me_v1_mv,
        make_me_v2_safe,
        make_sam_ct,
        make_sam_leaky,
    )

    fast_bypass = MEGA_BOOM.with_(fast_bypass=True)
    return {
        "sam_leaky": (make_sam_leaky(n_keys=4, seed=3), MEGA_BOOM),
        "sam_ct": (make_sam_ct(n_keys=6, seed=3), MEGA_BOOM),
        "me_v1_cv": (make_me_v1_cv(n_keys=6, seed=3), MEGA_BOOM),
        "me_v1_mv": (make_me_v1_mv(n_keys=6, seed=3), MEGA_BOOM),
        "me_v2_safe": (make_me_v2_safe(n_keys=6, seed=3), MEGA_BOOM),
        "me_v2_fb": (make_me_v2_safe(n_keys=6, seed=3), fast_bypass),
        "ct_memcmp": (make_ct_memcmp(n_pairs=24, seed=2, n_runs=2),
                      MEGA_BOOM),
    }


def localization_case():
    """The pinned localization campaign: early-exit memcmp, two units.

    Restricted to two representative units (an address trace and an
    occupancy trace) so the fixture stays compact and the tier-1 run fast;
    the full-unit behavior is covered by the e2e localization tests.
    """
    from repro.uarch import MEGA_BOOM
    from repro.workloads.memcmp import make_early_exit_memcmp

    workload = make_early_exit_memcmp(n_pairs=8, seed=2, n_runs=2)
    return workload, MEGA_BOOM, ("ROB-PC", "ROB-OCPNCY")


def localization_to_golden(report) -> dict:
    """Project a LocalizationReport onto the pinned fixture schema.

    Pins the scan's window and flagged offsets, the peak offset's
    statistics, and the full attribution ranking (PC, mnemonic, MI,
    permutation p) per unit.
    """
    units = {}
    for feature_id, unit in report.units.items():
        scan = unit.scan
        peak = scan.peak
        entry = {
            "n_offsets": scan.n_offsets,
            "flagged_offsets": list(scan.flagged_offsets),
            "window": ([scan.window.start, scan.window.end]
                       if scan.window is not None else None),
            "peak": (
                {"offset": peak.offset,
                 "cramers_v": peak.association.cramers_v,
                 "p_value": peak.association.p_value}
                if peak is not None else None
            ),
            "instructions": [
                {"pc": score.pc, "mnemonic": score.mnemonic,
                 "mi_bits": score.mi_bits, "p_value": score.p_value}
                for score in (unit.attribution.scores
                              if unit.attribution is not None else ())
            ],
        }
        units[feature_id] = entry
    return {
        "workload": report.workload_name,
        "config": report.config_name,
        "localized_units": sorted(report.localized_units),
        "units": units,
    }


def report_to_golden(report) -> dict:
    """Project a LeakageReport onto the pinned fixture schema."""
    units = {}
    for feature_id, unit in report.units.items():
        entry = {field: getattr(unit.association, field)
                 for field in GOLDEN_FIELDS}
        if unit.association_notiming is not None:
            entry["cramers_v_notiming"] = unit.association_notiming.cramers_v
        units[feature_id] = entry
    return {
        "workload": report.workload_name,
        "config": report.config_name,
        "leaky_units": sorted(report.leaky_units),
        "units": units,
    }


def taint_cases() -> dict:
    """The pinned taint campaigns, keyed by golden-fixture name.

    Sizes match the audit bundle and the taint differential tests: the
    escalating early-exit memcmp and its branchless negative control.
    """
    from repro.workloads.memcmp import (
        make_ct_memcmp_safe,
        make_early_exit_memcmp,
    )

    return {
        "taint_ee_memcmp": lambda: make_early_exit_memcmp(
            n_pairs=8, seed=2, n_runs=2),
        "taint_ct_memcmp_safe": lambda: make_ct_memcmp_safe(
            n_pairs=8, seed=2, n_runs=2),
    }


def taint_to_golden(publicness) -> dict:
    """Project a CampaignPublicness onto the pinned fixture schema."""
    return {
        "workload": publicness.workload_name,
        "seed_bytes": publicness.seed_bytes,
        "n_maps": len(publicness.maps),
        "merged": publicness.merged.to_dict(),
    }


def load_golden(name: str) -> dict:
    return json.loads((GOLDEN_DIR / f"{name}.json").read_text())
