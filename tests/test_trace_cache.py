"""Trace-cache correctness: hits replay bit-identical traces, and every
component of the content address — program source, input patches, core
configuration — independently invalidates the key."""

import pickle

import pytest

from repro.cli import main
from repro.sampler import (
    MicroSampler,
    TraceCache,
    Workload,
    run_campaign,
    task_key,
)
from repro.sampler.exec_backend import RunTask
from repro.sampler.trace_cache import default_cache_dir
from repro.uarch import SMALL_BOOM
from repro.workloads.memcmp import make_ct_memcmp

from tests.test_parallel_runner import assert_campaigns_identical

_SOURCE = """
.data
key: .byte 0
.text
main:
    roi.begin
    la t0, key
    lbu t1, 0(t0)
    andi t2, t1, 1
    iter.begin t2
    xor t3, t1, t2
    iter.end
    roi.end
    li a0, 0
    li a7, 93
    ecall
"""


def _workload(source=_SOURCE, n_inputs=4):
    return Workload(
        name="tiny",
        source=source,
        inputs=[{"key": bytes([i])} for i in range(n_inputs)],
    )


@pytest.fixture
def cache(tmp_path):
    return TraceCache(tmp_path / "cache")


def _task(workload, config=SMALL_BOOM, **overrides):
    program = workload.assemble()
    from repro.sampler import patch_program

    fields = dict(
        run_index=0,
        workload_name=workload.name,
        program=patch_program(program, workload.inputs[0]),
        config=config,
    )
    fields.update(overrides)
    return RunTask(**fields)


class TestKeying:
    def test_key_is_stable_across_calls(self):
        assert task_key(_task(_workload())) == task_key(_task(_workload()))

    def test_program_source_changes_key(self):
        mutated = _SOURCE.replace("xor t3, t1, t2", "or t3, t1, t2")
        assert task_key(_task(_workload())) != \
            task_key(_task(_workload(source=mutated)))

    def test_input_patch_changes_key(self):
        workload = _workload()
        base = _task(workload)
        from repro.sampler import patch_program

        other = _task(workload, program=patch_program(
            workload.assemble(), {"key": bytes([9])}))
        assert task_key(base) != task_key(other)

    def test_config_changes_key(self):
        assert task_key(_task(_workload())) != task_key(
            _task(_workload(), config=SMALL_BOOM.with_(rob_entries=64)))

    def test_tracer_settings_change_key(self):
        base = _task(_workload())
        assert task_key(base) != task_key(
            _task(_workload(), features=("ROB-PC",)))
        assert task_key(base) != task_key(
            _task(_workload(), keep_raw=("ROB-PC",)))
        assert task_key(base) != task_key(
            _task(_workload(), max_cycles=1000))

    def test_log_commits_changes_key(self):
        # Localization campaigns (commit logs on) must never replay an
        # entry that was simulated without them, and vice versa.
        assert task_key(_task(_workload())) != task_key(
            _task(_workload(), log_commits=True))

    def test_pruned_set_changes_key(self):
        # A taint-pruned trace records constant empty snapshots for the
        # pruned units; replaying it for an unpruned campaign would
        # fabricate clean verdicts, so the pruned set is key material.
        base = _task(_workload())
        assert task_key(base) != task_key(
            _task(_workload(), pruned=("Cache-ADDR",)))
        assert task_key(_task(_workload(), pruned=("Cache-ADDR",))) != \
            task_key(_task(_workload(), pruned=("Cache-ADDR", "ROB-PC")))
        # ... but the set is canonicalized, so declaration order is free.
        assert task_key(_task(_workload(), pruned=("ROB-PC", "Cache-ADDR"))) \
            == task_key(_task(_workload(), pruned=("Cache-ADDR", "ROB-PC")))

    def test_batch_prepass_fields_do_not_change_key(self):
        # The lockstep prepass only changes how the roi.begin checkpoint is
        # captured, never the simulated trace, so --batch-lanes auto and
        # off (and an attached checkpoint) must share trace-cache entries.
        from repro.sampler import patch_program
        from repro.sampler.checkpoint import capture_checkpoint

        workload = _workload()
        base = _task(workload, warmup_insts=64)
        checkpoint = capture_checkpoint(
            patch_program(workload.assemble(), workload.inputs[0]),
            warmup_insts=64)
        assert task_key(base) == task_key(
            _task(workload, warmup_insts=64, batch_lanes=8,
                  checkpoint=checkpoint))


class TestReplay:
    def test_hit_is_bit_identical_to_cold_run(self, cache):
        workload = _workload()
        cold = run_campaign(workload, SMALL_BOOM, cache=cache)
        assert cache.hits == 0 and cache.stores == len(workload.inputs)
        warm = run_campaign(workload, SMALL_BOOM, cache=cache)
        assert cache.hits == len(workload.inputs)
        assert warm.n_cached_runs == len(workload.inputs)
        assert_campaigns_identical(cold, warm)

    def test_replay_skips_simulation(self, cache):
        workload = _workload()
        run_campaign(workload, SMALL_BOOM, cache=cache)
        warm = run_campaign(workload, SMALL_BOOM, cache=cache)
        # A fully cached campaign never touches the core: the only elapsed
        # time is key computation and deserialization.
        assert warm.n_cached_runs == len(workload.inputs)
        assert warm.total_cycles() > 0  # stats replayed, not re-simulated

    def test_mutations_miss(self, cache):
        run_campaign(_workload(), SMALL_BOOM, cache=cache)
        mutated = _SOURCE.replace("xor t3, t1, t2", "or t3, t1, t2")
        run_campaign(_workload(source=mutated), SMALL_BOOM, cache=cache)
        assert cache.hits == 0

        run_campaign(_workload(), SMALL_BOOM.with_(rob_entries=64),
                     cache=cache)
        assert cache.hits == 0

        different_inputs = Workload(
            name="tiny", source=_SOURCE,
            inputs=[{"key": bytes([i + 100])} for i in range(4)],
        )
        run_campaign(different_inputs, SMALL_BOOM, cache=cache)
        assert cache.hits == 0

    def test_identical_inputs_deduplicated_within_campaign(self, cache):
        duplicated = Workload(
            name="tiny", source=_SOURCE,
            inputs=[{"key": b"\x01"}, {"key": b"\x02"},
                    {"key": b"\x01"}, {"key": b"\x02"}],
        )
        campaign = run_campaign(duplicated, SMALL_BOOM, cache=cache)
        # Only the two unique inputs were simulated; their twins replayed.
        assert cache.stores == 2
        assert len(campaign.runs) == 4
        assert [r.label for r in campaign.iterations] == [1, 0, 1, 0]
        sig = [r.features["ROB-PC"].snapshot_hash for r in campaign.iterations]
        assert sig[0] == sig[2] and sig[1] == sig[3]
        # ... and the replayed twins carry their own run indices.
        assert [r.run_index for r in campaign.iterations] == [0, 1, 2, 3]

    def test_corrupt_entry_is_a_miss(self, cache):
        workload = _workload(n_inputs=1)
        cold = run_campaign(workload, SMALL_BOOM, cache=cache)
        for path in cache.root.rglob("*.pkl"):
            path.write_bytes(b"garbage")
        warm = run_campaign(workload, SMALL_BOOM, cache=cache)
        assert warm.n_cached_runs == 0
        assert_campaigns_identical(cold, warm)

    def test_stale_format_version_is_a_miss(self, cache):
        workload = _workload(n_inputs=1)
        run_campaign(workload, SMALL_BOOM, cache=cache)
        for path in cache.root.rglob("*.pkl"):
            payload = pickle.loads(path.read_bytes())
            path.write_bytes(pickle.dumps((-1,) + payload[1:]))
        warm = run_campaign(workload, SMALL_BOOM, cache=cache)
        assert warm.n_cached_runs == 0

    def test_no_cache_bypasses(self, tmp_path):
        workload = _workload()
        campaign = run_campaign(workload, SMALL_BOOM, cache=None)
        assert campaign.n_cached_runs == 0
        assert not list(tmp_path.rglob("*.pkl"))

    def test_default_cache_dir_honours_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("MICROSAMPLER_CACHE_DIR", str(tmp_path / "here"))
        assert default_cache_dir() == tmp_path / "here"

    def test_cache_true_uses_default_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("MICROSAMPLER_CACHE_DIR", str(tmp_path / "auto"))
        run_campaign(_workload(), SMALL_BOOM, cache=True)
        assert list((tmp_path / "auto").rglob("*.pkl"))

    def test_pipeline_with_cache(self, cache):
        workload = _workload(n_inputs=6)
        cold = MicroSampler(SMALL_BOOM, features=["ROB-PC"],
                            cache=cache).analyze(workload)
        warm = MicroSampler(SMALL_BOOM, features=["ROB-PC"],
                            cache=cache).analyze(workload)
        assert cache.hits == 6
        assert cold.cramers_v_by_unit() == warm.cramers_v_by_unit()
        assert cold.units["ROB-PC"].association.p_value == \
            warm.units["ROB-PC"].association.p_value


class TestPrune:
    """Orphan-aware garbage collection across both entry stores."""

    @staticmethod
    def _populate(cache):
        # warmup_insts + cache makes run_campaign store a checkpoint per
        # unique program and record its key in each trace payload.
        run_campaign(_workload(), SMALL_BOOM, cache=cache, warmup_insts=8)
        traces = sorted(cache.root.rglob("*.pkl"))
        checkpoints = sorted(cache.root.rglob("*.ckpt"))
        assert traces and checkpoints
        return traces, checkpoints

    @staticmethod
    def _stale_ify(paths):
        for path in paths:
            payload = pickle.loads(path.read_bytes())
            path.write_bytes(pickle.dumps((-1,) + payload[1:]))

    def test_fresh_cache_is_untouched(self, cache):
        from repro.sampler.trace_cache import prune_cache

        traces, checkpoints = self._populate(cache)
        result = prune_cache(cache.root)
        assert result["removed_entries"] == 0
        assert result["removed"] == {"trace": 0, "checkpoint": 0,
                                     "orphan": 0}
        assert sorted(cache.root.rglob("*.pkl")) == traces
        assert sorted(cache.root.rglob("*.ckpt")) == checkpoints

    def test_stale_traces_orphan_their_checkpoints(self, cache):
        from repro.sampler.trace_cache import prune_cache

        traces, checkpoints = self._populate(cache)
        self._stale_ify(traces)
        result = prune_cache(cache.root)
        # The checkpoints were current-version but nothing references them
        # anymore: swept as orphans, counted separately from stale entries.
        assert result["removed"]["trace"] == len(traces)
        assert result["removed"]["checkpoint"] == 0
        assert result["removed"]["orphan"] == len(checkpoints)
        assert result["removed_entries"] == len(traces) + len(checkpoints)
        assert result["removed_bytes"] > 0
        assert not list(cache.root.rglob("*.pkl"))
        assert not list(cache.root.rglob("*.ckpt"))

    def test_referenced_checkpoints_survive(self, cache):
        from repro.sampler.trace_cache import prune_cache

        traces, checkpoints = self._populate(cache)
        # Stale-ify only one trace entry.  Each patched input has its own
        # checkpoint, so exactly that entry's checkpoint becomes an orphan;
        # the ones the surviving traces reference must stay.
        self._stale_ify(traces[:1])
        result = prune_cache(cache.root)
        assert result["removed"] == {"trace": 1, "checkpoint": 0,
                                     "orphan": 1}
        survivors = sorted(cache.root.rglob("*.ckpt"))
        assert len(survivors) == len(checkpoints) - 1
        assert set(survivors) < set(checkpoints)

    def test_stale_checkpoints_are_swept(self, cache):
        from repro.sampler.trace_cache import prune_cache

        _traces, checkpoints = self._populate(cache)
        self._stale_ify(checkpoints)
        result = prune_cache(cache.root)
        assert result["removed"] == {"trace": 0,
                                     "checkpoint": len(checkpoints),
                                     "orphan": 0}
        assert not list(cache.root.rglob("*.ckpt"))

    def test_prune_all_empties_both_stores(self, cache):
        from repro.sampler.trace_cache import prune_cache

        traces, checkpoints = self._populate(cache)
        result = prune_cache(cache.root, all_entries=True)
        assert result["removed"]["trace"] == len(traces)
        assert result["removed"]["checkpoint"] == len(checkpoints)
        assert result["removed"]["orphan"] == 0
        # Empty shard directories are cleaned up with their entries.
        assert not list(cache.root.rglob("*"))

    def test_stats_inventories_both_kinds(self, cache):
        from repro.sampler.trace_cache import cache_stats

        traces, checkpoints = self._populate(cache)
        self._stale_ify(traces[:1])
        stats = cache_stats(cache.root)
        assert stats["trace"]["entries"] == len(traces)
        assert stats["trace"]["stale_entries"] == 1
        assert stats["checkpoint"]["entries"] == len(checkpoints)
        assert stats["checkpoint"]["stale_entries"] == 0

    def test_cli_prune_reports_per_kind_counts(self, cache, capsys):
        traces, checkpoints = self._populate(cache)
        self._stale_ify(traces)
        assert main(["cache", "prune", "--cache-dir",
                     str(cache.root)]) == 0
        out = capsys.readouterr().out
        assert f"{len(traces)} stale trace" in out
        assert f"{len(checkpoints)} orphaned checkpoint" in out


class TestCLI:
    def test_analyze_uses_cache_dir_and_no_cache(self, tmp_path, capsys):
        cache_dir = tmp_path / "cli-cache"
        argv = ["analyze", "sam-ct", "--inputs", "2", "--config", "small",
                "--no-timing-removed", "--cache-dir", str(cache_dir)]
        assert main(argv) == 0
        stored = list(cache_dir.rglob("*.pkl"))
        assert stored

        # Second invocation replays from the cache and agrees.
        assert main(argv) == 0
        assert list(cache_dir.rglob("*.pkl")) == stored

        # --no-cache leaves the directory untouched.
        untouched = tmp_path / "untouched"
        assert main(argv[:-1] + [str(untouched), "--no-cache"]) == 0
        assert not untouched.exists()

    def test_analyze_jobs_flag(self, capsys):
        assert main(["analyze", "sam-ct", "--inputs", "2", "--config",
                     "small", "--no-timing-removed", "--jobs", "2",
                     "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "No statistically significant correlation" in out
