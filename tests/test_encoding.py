"""Binary encode/decode tests, including golden machine words."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import (
    DecodingError,
    EncodingError,
    INSTRUCTION_SPECS,
    Format,
    FuncClass,
    Instruction,
    decode,
    encode,
)

REG = st.integers(min_value=0, max_value=31)
IMM12 = st.integers(min_value=-2048, max_value=2047)


# Golden words cross-checked against the RISC-V ISA manual encodings.
@pytest.mark.parametrize("inst,word", [
    (Instruction("addi", rd=1, rs1=2, imm=5), 0x00510093),
    (Instruction("add", rd=3, rs1=4, rs2=5), 0x005201B3),
    (Instruction("sub", rd=3, rs1=4, rs2=5), 0x405201B3),
    (Instruction("lui", rd=10, imm=0x12345000), 0x12345537),
    (Instruction("ld", rd=6, rs1=7, imm=16), 0x0103B303),
    (Instruction("sd", rs1=7, rs2=6, imm=24), 0x0063BC23),
    (Instruction("jal", rd=1, imm=2048, pc=0), 0x001000EF),
    (Instruction("jalr", rd=0, rs1=1, imm=0), 0x00008067),
    (Instruction("beq", rs1=1, rs2=2, imm=8, pc=0), 0x00208463),
    (Instruction("mul", rd=5, rs1=6, rs2=7), 0x027302B3),
    (Instruction("divu", rd=5, rs1=6, rs2=7), 0x027352B3),
    (Instruction("ecall",), 0x00000073),
    (Instruction("ebreak",), 0x00100073),
    (Instruction("slli", rd=1, rs1=1, imm=32), 0x02009093),
    (Instruction("srai", rd=1, rs1=1, imm=4), 0x4040D093),
])
def test_golden_encodings(inst, word):
    assert encode(inst) == word
    decoded = decode(word)
    assert decoded.mnemonic == inst.mnemonic
    assert (decoded.rd, decoded.rs1, decoded.rs2, decoded.imm) == (
        inst.rd, inst.rs1, inst.rs2, inst.imm)


def _roundtrip(inst):
    decoded = decode(encode(inst), pc=inst.pc)
    assert decoded.mnemonic == inst.mnemonic
    assert (decoded.rd, decoded.rs1, decoded.rs2, decoded.imm) == (
        inst.rd, inst.rs1, inst.rs2, inst.imm)


_R_MNEMONICS = [m for m, s in INSTRUCTION_SPECS.items() if s.fmt is Format.R]
_LOAD_MNEMONICS = [m for m, s in INSTRUCTION_SPECS.items()
                   if s.func_class is FuncClass.LOAD]
_STORE_MNEMONICS = [m for m, s in INSTRUCTION_SPECS.items()
                    if s.func_class is FuncClass.STORE]
_BRANCH_MNEMONICS = [m for m, s in INSTRUCTION_SPECS.items()
                     if s.func_class is FuncClass.BRANCH]


@pytest.mark.parametrize("mnemonic", _R_MNEMONICS)
def test_roundtrip_all_r_type(mnemonic):
    _roundtrip(Instruction(mnemonic, rd=11, rs1=21, rs2=31))


@pytest.mark.parametrize("mnemonic", _LOAD_MNEMONICS)
def test_roundtrip_all_loads(mnemonic):
    _roundtrip(Instruction(mnemonic, rd=9, rs1=18, imm=-128))


@pytest.mark.parametrize("mnemonic", _STORE_MNEMONICS)
def test_roundtrip_all_stores(mnemonic):
    _roundtrip(Instruction(mnemonic, rs1=18, rs2=9, imm=-4))


@pytest.mark.parametrize("mnemonic", _BRANCH_MNEMONICS)
def test_roundtrip_all_branches(mnemonic):
    _roundtrip(Instruction(mnemonic, rs1=3, rs2=4, imm=-4096))


@pytest.mark.parametrize("mnemonic", ["roi.begin", "roi.end", "iter.end"])
def test_roundtrip_markers(mnemonic):
    _roundtrip(Instruction(mnemonic))


def test_roundtrip_iter_begin_keeps_rs1():
    _roundtrip(Instruction("iter.begin", rs1=25))


def test_immediate_range_checks():
    with pytest.raises(EncodingError):
        encode(Instruction("addi", rd=1, rs1=1, imm=2048))
    with pytest.raises(EncodingError):
        encode(Instruction("addi", rd=1, rs1=1, imm=-2049))
    with pytest.raises(EncodingError):
        encode(Instruction("jal", rd=1, imm=1 << 21))
    with pytest.raises(EncodingError):
        encode(Instruction("beq", rs1=1, rs2=2, imm=3))  # misaligned


def test_shift_amount_range():
    with pytest.raises(EncodingError):
        encode(Instruction("slli", rd=1, rs1=1, imm=64))
    with pytest.raises(EncodingError):
        encode(Instruction("slliw", rd=1, rs1=1, imm=32))


def test_decode_rejects_garbage():
    with pytest.raises(DecodingError):
        decode(0xFFFFFFFF)
    with pytest.raises(DecodingError):
        decode(0x0000007F)


@given(rd=REG, rs1=REG, imm=IMM12)
def test_property_roundtrip_addi(rd, rs1, imm):
    _roundtrip(Instruction("addi", rd=rd, rs1=rs1, imm=imm))


@given(rs1=REG, rs2=REG, imm=st.integers(min_value=-2048, max_value=2047))
def test_property_roundtrip_store(rs1, rs2, imm):
    _roundtrip(Instruction("sd", rs1=rs1, rs2=rs2, imm=imm))


@given(rs1=REG, rs2=REG,
       imm=st.integers(min_value=-2048, max_value=2047).map(lambda v: v * 2))
def test_property_roundtrip_branch(rs1, rs2, imm):
    _roundtrip(Instruction("beq", rs1=rs1, rs2=rs2, imm=imm))


@given(rd=REG, imm=st.integers(min_value=-(1 << 19), max_value=(1 << 19) - 1)
       .map(lambda v: v * 4096))
def test_property_roundtrip_lui(rd, imm):
    _roundtrip(Instruction("lui", rd=rd, imm=imm))


# -- seeded fuzz: assemble -> encode -> decode -> disasm -> re-assemble -------
#
# Beyond the per-format property tests above, a seeded generator covers the
# whole mnemonic table with random valid operands and asserts the full tool
# chain is a fixed point: the binary word, the decoded fields and the
# disassembled text must all survive a round trip through the assembler.

import random

from repro.isa import format_instruction
from repro.isa.assembler import DEFAULT_TEXT_BASE, assemble

_SHIFT_LIMITS = {"slli": 63, "srli": 63, "srai": 63,
                 "slliw": 31, "srliw": 31, "sraiw": 31}


def _random_instruction(rng: random.Random) -> Instruction:
    mnemonic = rng.choice(list(INSTRUCTION_SPECS))
    spec = INSTRUCTION_SPECS[mnemonic]
    reg = lambda: rng.randrange(32)
    pc = DEFAULT_TEXT_BASE
    if spec.func_class is FuncClass.MARKER:
        rs1 = reg() if mnemonic == "iter.begin" else 0
        return Instruction(mnemonic, rs1=rs1, pc=pc)
    if spec.fmt is Format.SYS:
        return Instruction(mnemonic, pc=pc)
    if spec.fmt is Format.R:
        return Instruction(mnemonic, rd=reg(), rs1=reg(), rs2=reg(), pc=pc)
    if spec.fmt is Format.U:
        return Instruction(mnemonic, rd=reg(),
                           imm=rng.randrange(-(1 << 19), 1 << 19) << 12, pc=pc)
    if spec.fmt is Format.J:
        # Keep the absolute target non-negative: the disassembler renders
        # branch/jump targets as addresses, which is what the assembler
        # can re-resolve.
        return Instruction(mnemonic, rd=reg(),
                           imm=rng.randrange(-pc, 1 << 20, 2), pc=pc)
    if spec.fmt is Format.B:
        return Instruction(mnemonic, rs1=reg(), rs2=reg(),
                           imm=rng.randrange(-4096, 4096, 2), pc=pc)
    if spec.fmt is Format.S:
        return Instruction(mnemonic, rs1=reg(), rs2=reg(),
                           imm=rng.randrange(-2048, 2048), pc=pc)
    # I-format: loads, jalr and ALU immediates (shifts have narrower ranges).
    if mnemonic in _SHIFT_LIMITS:
        imm = rng.randrange(_SHIFT_LIMITS[mnemonic] + 1)
    else:
        imm = rng.randrange(-2048, 2048)
    return Instruction(mnemonic, rd=reg(), rs1=reg(), imm=imm, pc=pc)


def _reassemble_one(inst: Instruction) -> Instruction:
    source = f".text\nmain:\n    {format_instruction(inst)}\n"
    program = assemble(source, entry="main")
    assert len(program.instructions) == 1
    return program.instructions[0]


@pytest.mark.parametrize("seed", range(4))
def test_fuzz_full_toolchain_fixed_point(seed):
    rng = random.Random(seed)
    for _ in range(250):
        inst = _random_instruction(rng)
        word = encode(inst)
        decoded = decode(word, pc=inst.pc)
        assert (decoded.mnemonic, decoded.rd, decoded.rs1, decoded.rs2,
                decoded.imm) == (inst.mnemonic, inst.rd, inst.rs1,
                                 inst.rs2, inst.imm)
        # Disassembling the decoded instruction and assembling that text
        # must reproduce the same machine word and the same fields.
        reassembled = _reassemble_one(decoded)
        assert encode(reassembled) == word
        assert (reassembled.mnemonic, reassembled.rd, reassembled.rs1,
                reassembled.rs2, reassembled.imm) == (
            inst.mnemonic, inst.rd, inst.rs1, inst.rs2, inst.imm)
        # ... and the rendering itself is a fixed point.
        assert format_instruction(reassembled) == format_instruction(decoded)
