"""Differential tests for change-detection (incremental) tracing.

The incremental tracer consults each feature's state-version token every
cycle and replays the memoized previous digest for unchanged units instead
of resampling.  That is purely an execution-speed optimization: snapshots
must be **bit-identical** to the naive resample-always tracer
(``incremental=False``).  Three layers lock this in:

1. end-to-end differential runs on the case-study workloads, comparing
   every iteration's ``snapshot_hash``, ``snapshot_hash_notiming`` and
   per-cycle digest sequence across both tracer modes;
2. a property fuzz over random straight-line programs asserting the
   version-token contract directly — a feature whose token did not change
   between cycles must sample an identical row;
3. a localization differential: a campaign traced naively, its trace-cache
   replay, and an incremental re-simulation all localize identically.
"""

import pytest

from repro.kernel import ProxyKernel
from repro.localize import localization_to_dict
from repro.sampler import MicroSampler, TraceCache
from repro.sampler import exec_backend
from repro.sampler.runner import patch_program
from repro.trace import FEATURE_ORDER, FEATURES, MicroarchTracer
from repro.uarch import MEGA_BOOM, SMALL_BOOM, Core
from repro.workloads import fuzz
from repro.workloads.chacha import make_chacha20
from repro.workloads.memcmp import make_early_exit_memcmp
from repro.workloads.modexp import make_me_v2_safe

WORKLOADS = {
    "chacha20": lambda: make_chacha20(n_keys=2, n_blocks=1, seed=6),
    "ee-mem-cmp": lambda: make_early_exit_memcmp(n_pairs=4, length=8,
                                                 seed=2, n_runs=1),
    "me-v2-safe": lambda: make_me_v2_safe(n_keys=1, seed=3),
}


def _trace(program, config, incremental):
    tracer = MicroarchTracer(keep_raw=True, incremental=incremental)
    core = Core(program, config, kernel=ProxyKernel(), tracer=tracer)
    result = core.run()
    assert result.exit_code == 0
    return tracer


def _assert_bit_identical(incremental, naive):
    assert len(incremental.iterations) == len(naive.iterations)
    assert len(incremental.iterations) > 0
    for a, b in zip(incremental.iterations, naive.iterations):
        assert a.label == b.label
        assert a.start_cycle == b.start_cycle
        assert a.end_cycle == b.end_cycle
        assert a.features.keys() == b.features.keys()
        for feature_id in a.features:
            fa, fb = a.features[feature_id], b.features[feature_id]
            assert fa.snapshot_hash == fb.snapshot_hash, feature_id
            assert fa.snapshot_hash_notiming == fb.snapshot_hash_notiming, \
                feature_id
            assert fa.cycle_digests == fb.cycle_digests, feature_id
            assert fa.rows == fb.rows, feature_id
            assert fa.values == fb.values, feature_id
            assert fa.order == fb.order, feature_id


class TestDifferentialWorkloads:
    """Incremental tracing reproduces the naive tracer bit for bit."""

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_workload_snapshots_identical(self, name):
        workload = WORKLOADS[name]()
        program = workload.assemble()
        for patches in workload.inputs[:2]:
            patched = patch_program(program, patches)
            incremental = _trace(patched, MEGA_BOOM, True)
            naive = _trace(patched, MEGA_BOOM, False)
            _assert_bit_identical(incremental, naive)

    def test_small_core_snapshots_identical(self):
        workload = WORKLOADS["me-v2-safe"]()
        patched = patch_program(workload.assemble(), workload.inputs[0])
        _assert_bit_identical(_trace(patched, SMALL_BOOM, True),
                              _trace(patched, SMALL_BOOM, False))

    def test_columnar_view_identical(self):
        workload = WORKLOADS["ee-mem-cmp"]()
        patched = patch_program(workload.assemble(), workload.inputs[0])
        incremental = _trace(patched, MEGA_BOOM, True)
        naive = _trace(patched, MEGA_BOOM, False)
        assert incremental.feature_columns == naive.feature_columns
        assert incremental.feature_columns_notiming == \
            naive.feature_columns_notiming
        assert incremental.label_column == naive.label_column


class _VersionContractChecker:
    """Pseudo-tracer asserting the change-detection contract every cycle.

    For every Table IV feature: if ``version(core)`` returns the same token
    as on the previous cycle, ``sample(core)`` must return the identical
    row — that is exactly the condition under which the incremental tracer
    skips resampling.  Sampling every cycle regardless makes the check
    independent of marker placement, so plain fuzz programs (which carry no
    ``iter`` markers) still exercise it.
    """

    _UNSET = object()

    def __init__(self):
        self.specs = [FEATURES[feature_id] for feature_id in FEATURE_ORDER]
        self._last = {spec.feature_id: (self._UNSET, None)
                      for spec in self.specs}
        self.unchanged_samples = 0
        self.changed_samples = 0

    def on_marker(self, mnemonic, label, cycle):
        pass

    def on_cycle(self, core, cycle):
        for spec in self.specs:
            token = spec.version(core)
            row = spec.sample(core)
            last_token, last_row = self._last[spec.feature_id]
            if token == last_token:
                self.unchanged_samples += 1
                assert row == last_row, (
                    f"{spec.feature_id}: state-version token unchanged at "
                    f"cycle {cycle} but the sampled row mutated "
                    f"({last_row!r} -> {row!r}) — a version bump is missing "
                    f"in the owning unit"
                )
            else:
                self.changed_samples += 1
            self._last[spec.feature_id] = (token, row)


class TestVersionTokenContract:
    """Property fuzz: unchanged token implies unchanged row, all features."""

    def test_every_feature_has_a_version_token(self):
        assert len(FEATURE_ORDER) == 16
        for feature_id in FEATURE_ORDER:
            assert FEATURES[feature_id].version is not None, feature_id

    @pytest.mark.parametrize("seed", range(6))
    def test_straightline_fuzz_small_core(self, seed):
        self._check(fuzz.generate_straightline(seed), SMALL_BOOM)

    @pytest.mark.parametrize("seed", (0, 1))
    def test_straightline_fuzz_mega_core(self, seed):
        self._check(fuzz.generate_straightline(seed), MEGA_BOOM)

    @staticmethod
    def _check(program, config):
        checker = _VersionContractChecker()
        core = Core(program, config, kernel=ProxyKernel(), tracer=checker)
        result = core.run()
        assert result.exit_code == 0
        # The run must actually exercise both paths: some cycles where a
        # unit idled (token unchanged) and some where it mutated.
        assert checker.unchanged_samples > 0
        assert checker.changed_samples > 0


FEATURE = "ROB-PC"


class TestLocalizationDifferential:
    """Naive traces, their cache replay and incremental re-simulation all
    localize identically."""

    def test_localization_identical_across_modes(self, tmp_path, monkeypatch):
        workload = make_early_exit_memcmp(n_pairs=6, length=8, seed=2,
                                          n_runs=1)
        cache = TraceCache(tmp_path / "cache")

        def naive_tracer(*args, **kwargs):
            kwargs["incremental"] = False
            return MicroarchTracer(*args, **kwargs)

        # Cold campaign simulated with the naive tracer, stored in the cache.
        with monkeypatch.context() as patch:
            patch.setattr(exec_backend, "MicroarchTracer", naive_tracer)
            naive = MicroSampler(cache=cache).localize(
                workload, features=(FEATURE,))
        assert cache.stores > 0 and cache.hits == 0

        # Replaying the naive traces from the cache localizes identically.
        replay = MicroSampler(cache=cache).localize(
            workload, features=(FEATURE,))
        assert cache.hits >= len(workload.inputs)

        # A fresh incremental simulation reproduces the same localization.
        incremental = MicroSampler(cache=None).localize(
            workload, features=(FEATURE,))

        reports = [localization_to_dict(report)
                   for report in (naive, replay, incremental)]
        for payload in reports:
            payload["timings_seconds"] = {}
        assert reports[0] == reports[1] == reports[2]
