"""Cross-cutting checks over every workload program in the repository."""

import pytest

from repro.isa import decode, encode, format_program
from repro.workloads.bignum import make_mp_modexp_ct, make_mp_modexp_leaky
from repro.workloads.chacha import make_chacha20
from repro.workloads.cipher import make_sbox_ct, make_sbox_lookup
from repro.workloads.memcmp import make_ct_memcmp
from repro.workloads.modexp import (
    make_div_timing,
    make_me_v1_cv,
    make_me_v1_mv,
    make_me_v2_safe,
    make_sam_ct,
    make_sam_ct_window,
    make_sam_leaky,
)
from repro.workloads.openssl import make_primitive_workload
from repro.workloads.spectre import make_spectre_v1

ALL_WORKLOADS = [
    make_sam_leaky(n_keys=1),
    make_sam_ct(n_keys=1),
    make_sam_ct_window(n_keys=1),
    make_me_v1_cv(n_keys=1),
    make_me_v1_mv(n_keys=1),
    make_me_v2_safe(n_keys=1),
    make_div_timing(n_keys=1),
    make_ct_memcmp(n_pairs=2, n_runs=1),
    make_sbox_lookup(n_sets=2, n_runs=1),
    make_sbox_ct(n_sets=2, n_runs=1),
    make_spectre_v1(n_iters=2, n_runs=1),
    make_chacha20(n_keys=1, n_blocks=1),
    make_mp_modexp_ct(n_keys=1),
    make_mp_modexp_leaky(n_keys=1),
    make_primitive_workload("constant_time_eq", n_sets=2, n_runs=1),
]

IDS = [workload.name for workload in ALL_WORKLOADS]


@pytest.mark.parametrize("workload", ALL_WORKLOADS, ids=IDS)
def test_assembles_deterministically(workload):
    first = workload.assemble()
    second = workload.assemble()
    assert len(first.instructions) == len(second.instructions)
    for a, b in zip(first.instructions, second.instructions):
        assert (a.mnemonic, a.rd, a.rs1, a.rs2, a.imm, a.pc) == \
            (b.mnemonic, b.rd, b.rs1, b.rs2, b.imm, b.pc)


@pytest.mark.parametrize("workload", ALL_WORKLOADS, ids=IDS)
def test_every_instruction_encodes_and_decodes(workload):
    program = workload.assemble()
    for inst in program.instructions:
        decoded = decode(encode(inst), pc=inst.pc)
        assert (decoded.mnemonic, decoded.rd, decoded.rs1, decoded.rs2,
                decoded.imm) == (inst.mnemonic, inst.rd, inst.rs1,
                                 inst.rs2, inst.imm)


@pytest.mark.parametrize("workload", ALL_WORKLOADS, ids=IDS)
def test_disassembles_cleanly(workload):
    program = workload.assemble()
    text = format_program(program.instructions)
    assert text.count("\n") == len(program.instructions) - 1


@pytest.mark.parametrize("workload", ALL_WORKLOADS, ids=IDS)
def test_uses_iteration_markers(workload):
    program = workload.assemble()
    mnemonics = {inst.mnemonic for inst in program.instructions}
    assert "iter.begin" in mnemonics and "iter.end" in mnemonics
    assert "ecall" in mnemonics  # proxy-kernel exit


@pytest.mark.parametrize("workload", ALL_WORKLOADS, ids=IDS)
def test_inputs_patch_known_symbols(workload):
    program = workload.assemble()
    for patches in workload.inputs:
        for symbol in patches:
            assert symbol in program.symbols