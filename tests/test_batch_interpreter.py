"""Differential lockstep battery: the batch interpreter vs the golden model.

The scalar :class:`~repro.isa.interpreter.Interpreter` is authoritative.
Every test here pins the batched SIMD-across-inputs execution to it
bit-for-bit: final register files, data memory, dirty pages, ArchEvent
streams, markers and exit codes must all equal N independent scalar runs —
whether a lane stayed batched to completion or was split off at a
divergence.  The fuzz corpora (Cascade-style, from
:mod:`repro.workloads.fuzz`) cover well over 200 random programs; the
ground-truth section checks that known-leaky code diverges exactly at its
textbook leak and that the constant-time suite never leaves lockstep.
"""

import random

import numpy as np
import pytest

from repro.isa import (
    BatchInterpreter,
    ExecutionError,
    Interpreter,
    assemble,
    run_batch,
)
from repro.isa.batch_interpreter import BatchMemory
from repro.isa.batch_semantics import (
    BATCH_ALU_OPS,
    BATCH_BRANCH_CONDITIONS,
    batch_branch_taken,
    batch_compute_alu,
)
from repro.isa.semantics import MASK64, branch_taken, compute_alu
from repro.kernel import ProxyKernel
from repro.sampler import patch_program
from repro.sampler.batch import (
    DEFAULT_MAX_LANES,
    describe_batch_lanes,
    parse_batch_lanes,
    resolve_batch_lanes,
)
from repro.workloads import fuzz
from repro.workloads.bignum import make_mp_modexp_ct
from repro.workloads.chacha import make_chacha20
from repro.workloads.memcmp import make_ct_memcmp_safe, make_early_exit_memcmp

INT64_MIN = -(1 << 63)


def _lane_variants(program, symbol, size, seed, n_lanes):
    """N copies of ``program`` differing only in ``symbol``'s data bytes."""
    rng = random.Random(seed)
    return [patch_program(program, {symbol: rng.randbytes(size)})
            for _ in range(n_lanes)]


def assert_batch_matches_scalar(programs, *, use_kernels=False,
                                track_dirty=False, max_steps=2_000_000):
    """Run ``programs`` batched and scalar; assert bit-identical outcomes."""
    kernels = [ProxyKernel() for _ in programs] if use_kernels else None
    batch = BatchInterpreter(programs, record_arch_trace=True,
                             kernels=kernels, track_dirty_pages=track_dirty)
    outcome = batch.run(max_steps)
    for lane, program in enumerate(programs):
        kernel = ProxyKernel() if use_kernels else None
        interp = Interpreter(
            program, record_arch_trace=True,
            syscall_handler=kernel.handle_ecall if kernel else None,
            track_dirty_pages=track_dirty)
        expect = interp.run(max_steps)
        got = outcome.lane_results[lane]
        assert got.steps == expect.steps, f"lane {lane} steps"
        assert got.exit_code == expect.exit_code, f"lane {lane} exit"
        assert got.markers == expect.markers, f"lane {lane} markers"
        assert got.arch_trace == expect.arch_trace, f"lane {lane} trace"
        assert batch.lane_regs(lane) == \
            tuple(interp.read_reg(i) for i in range(32)), f"lane {lane} regs"
        n_data = len(program.data)
        if n_data:
            assert batch.lane_read_bytes(lane, program.data_base, n_data) == \
                interp.memory.read_bytes(program.data_base, n_data), \
                f"lane {lane} data"
        if track_dirty:
            assert batch.lane_dirty_pages(lane) == \
                interp.memory.dirty_pages, f"lane {lane} dirty pages"
        if use_kernels:
            assert kernels[lane].console_text == kernel.console_text
            assert kernels[lane].exit_code == kernel.exit_code
    return outcome


# -- fuzz corpora: batch == N scalar runs, bit for bit -----------------------

#: 25 seeds x 8 lanes = 200 random straight-line programs.
N_STRAIGHTLINE_SEEDS = 25
STRAIGHTLINE_LANES = 8


class TestStraightlineFuzz:
    @pytest.mark.parametrize("seed", range(N_STRAIGHTLINE_SEEDS))
    def test_batch_matches_scalar(self, seed):
        program = fuzz.generate_straightline(seed)
        lanes = _lane_variants(program, "scratch", 64, seed * 7 + 1,
                               STRAIGHTLINE_LANES)
        outcome = assert_batch_matches_scalar(lanes, track_dirty=True)
        # No control flow, register-independent addresses: pure lockstep.
        assert outcome.divergences == []
        assert outcome.n_lockstep_lanes == STRAIGHTLINE_LANES


class TestBranchyFuzz:
    """Bounded data-dependent branches: lanes may split; results must not."""

    @pytest.mark.parametrize("seed", range(12))
    def test_batch_matches_scalar_through_splits(self, seed):
        program = fuzz.generate(seed)
        lanes = _lane_variants(program, "scratch", 256, seed * 13 + 5, 6)
        outcome = assert_batch_matches_scalar(lanes)
        assert len(outcome.lane_results) == 6


class TestMemoryTortureFuzz:
    """Dense mixed-size, unaligned loads/stores over a 24-byte window."""

    @pytest.mark.parametrize("seed", range(8))
    def test_mixed_width_unaligned_traffic(self, seed):
        program = fuzz.generate_torture(seed)
        lanes = _lane_variants(program, "window", 32, seed + 99, 4)
        outcome = assert_batch_matches_scalar(lanes, track_dirty=True)
        assert outcome.divergences == []  # addresses are data-independent


# -- ALU edge cases through whole programs -----------------------------------

_RR_MNEMONICS = sorted(
    m for m in BATCH_ALU_OPS
    if m not in ("addi", "andi", "ori", "xori", "slti", "sltiu", "addiw",
                 "slli", "srli", "srai", "slliw", "srliw", "sraiw",
                 "lui", "auipc"))

#: Per-lane (a, b) operand pairs covering division overflow, divide-by-zero,
#: shift amounts >= 64 (register shifts mask to 6 bits) and the float64
#: precision cliff at 2^53 that once corrupted the scalar div path.
_EDGE_OPERANDS = [
    (INT64_MIN, -1),
    (INT64_MIN, 1),
    (-7, 0),
    ((1 << 53) + 3, 3),
    (-(1 << 62) - 12345, -7),
    (1, 64),
    (-1, INT64_MIN),
    (0x123456789ABCDEF0, 127),
]


def _edge_alu_program():
    lines = [
        ".data",
        "ops: .zero 16",
        f"res: .zero {8 * len(_RR_MNEMONICS) + 8}",
        "mix: .zero 32",
        ".text",
        "main:",
        "    la   s0, ops",
        "    la   s1, res",
        "    ld   t0, 0(s0)",
        "    ld   t1, 8(s0)",
    ]
    for index, mnemonic in enumerate(_RR_MNEMONICS):
        lines.append(f"    {mnemonic} t2, t0, t1")
        lines.append(f"    sd   t2, {8 * index}(s1)")
    lines += [
        "    la   s2, mix",
        "    sd   t0, 0(s2)",
        "    sb   t1, 3(s2)",
        "    lh   t2, 2(s2)",
        "    sh   t2, 9(s2)",
        "    sw   t1, 5(s2)",
        "    ld   t3, 1(s2)",
        "    lbu  t4, 6(s2)",
        "    lw   t5, 3(s2)",
        "    lhu  t6, 7(s2)",
        "    lb   a1, 11(s2)",
        "    li   a0, 0",
        "    li   a7, 93",
        "    ecall",
    ]
    return assemble("\n".join(lines), entry="main")


class TestAluEdgeCases:
    def test_edge_operands_through_every_rr_op(self):
        program = _edge_alu_program()
        lanes = [
            patch_program(program, {"ops": (a & MASK64).to_bytes(8, "little")
                                    + (b & MASK64).to_bytes(8, "little")})
            for a, b in _EDGE_OPERANDS
        ]
        outcome = assert_batch_matches_scalar(lanes, track_dirty=True)
        assert outcome.divergences == []


# -- per-mnemonic semantics tables -------------------------------------------

_EDGE64 = [0, 1, 2, 3, 31, 32, 63, 64, 65, 127,
           (1 << 63) - 1, 1 << 63, MASK64, MASK64 - 1,
           0x7FFFFFFF, 0x80000000, 0xFFFFFFFF, 0x100000000,
           (1 << 53) + 1, (1 << 62) + 12345]


def _operand_pairs(mnemonic):
    rng = random.Random(sum(map(ord, mnemonic)))
    pairs = [(a, b) for a in _EDGE64 for b in _EDGE64]
    pairs += [(rng.getrandbits(64), rng.getrandbits(64)) for _ in range(200)]
    return pairs


class TestSemanticsTables:
    def test_tables_mirror_scalar_tables(self):
        from repro.isa.semantics import ALU_OPS, BRANCH_CONDITIONS

        assert set(BATCH_ALU_OPS) == set(ALU_OPS)
        assert set(BATCH_BRANCH_CONDITIONS) == set(BRANCH_CONDITIONS)

    @pytest.mark.parametrize("mnemonic", sorted(BATCH_ALU_OPS))
    def test_alu_matches_scalar_per_lane(self, mnemonic):
        pairs = _operand_pairs(mnemonic)
        a = np.array([p[0] for p in pairs], dtype=np.uint64)
        b = np.array([p[1] for p in pairs], dtype=np.uint64)
        got = batch_compute_alu(mnemonic, a, b)
        for index, (x, y) in enumerate(pairs):
            expect = compute_alu(mnemonic, x, y) & MASK64
            assert int(got[index]) == expect, \
                f"{mnemonic}({x:#x}, {y:#x})"

    @pytest.mark.parametrize("mnemonic", sorted(BATCH_BRANCH_CONDITIONS))
    def test_branch_matches_scalar_per_lane(self, mnemonic):
        pairs = _operand_pairs(mnemonic)
        a = np.array([p[0] for p in pairs], dtype=np.uint64)
        b = np.array([p[1] for p in pairs], dtype=np.uint64)
        got = batch_branch_taken(mnemonic, a, b)
        for index, (x, y) in enumerate(pairs):
            assert bool(got[index]) == branch_taken(mnemonic, x, y), \
                f"{mnemonic}({x:#x}, {y:#x})"

    def test_signed_division_oracle(self):
        """div/rem against exact big-int truncating division (no float path)."""
        cases = [(INT64_MIN, -1), (INT64_MIN, 1), (INT64_MIN, 3),
                 (5, 0), (-5, 0), (0, 0),
                 ((1 << 53) + 3, 3), (-((1 << 53) + 3), 3),
                 ((1 << 62) + 12345, -7), (-(1 << 62) - 12345, 7),
                 ((1 << 63) - 1, -(1 << 31))]
        for a, b in cases:
            if b == 0:
                quotient, remainder = -1, a
            else:
                quotient = abs(a) // abs(b)
                if (a < 0) != (b < 0):
                    quotient = -quotient
                quotient = ((quotient & MASK64) ^ (1 << 63)) - (1 << 63)
                remainder = a - quotient * b
            ua, ub = a & MASK64, b & MASK64
            assert compute_alu("div", ua, ub) & MASK64 == quotient & MASK64
            assert compute_alu("rem", ua, ub) & MASK64 == remainder & MASK64
            lanes_a = np.array([ua], dtype=np.uint64)
            lanes_b = np.array([ub], dtype=np.uint64)
            assert int(batch_compute_alu("div", lanes_a, lanes_b)[0]) == \
                quotient & MASK64
            assert int(batch_compute_alu("rem", lanes_a, lanes_b)[0]) == \
                remainder & MASK64


# -- divergence detection -----------------------------------------------------

_BRANCH_DIVERGE = """
.data
key: .byte 0
out: .zero 8
.text
main:
    la   t0, key
    lbu  t1, 0(t0)
    andi t2, t1, 1
    beqz t2, even
    li   t3, 111
    j    join
even:
    li   t3, 222
join:
    la   t4, out
    sd   t3, 0(t4)
    li   a0, 0
    li   a7, 93
    ecall
"""

_MEM_DIVERGE = """
.data
idx: .byte 0
table: .zero 64
.text
main:
    la   t0, idx
    lbu  t1, 0(t0)
    slli t1, t1, 3
    la   t2, table
    add  t2, t2, t1
    ld   t3, 0(t2)
    li   a0, 0
    li   a7, 93
    ecall
"""

_JUMP_DIVERGE = """
.data
sel: .byte 0
.text
main:
    la   t0, sel
    lbu  t1, 0(t0)
    slli t1, t1, 3
    la   t2, fn0
    add  t2, t2, t1
    jalr ra, t2, 0
    li   a7, 93
    ecall
fn0:
    li   a0, 1
    ret
fn1:
    li   a0, 2
    ret
"""

_WRITE_DIVERGE = """
.data
len: .byte 5
msg: .asciz "hello"
.text
main:
    la   t0, len
    lbu  a2, 0(t0)
    li   a7, 64
    li   a0, 1
    la   a1, msg
    ecall
    li   a0, 0
    li   a7, 93
    ecall
"""

_EXIT_DATA = """
.data
code: .byte 0
.text
main:
    la   t0, code
    lbu  a0, 0(t0)
    li   a7, 93
    ecall
"""


class TestDivergence:
    def test_branch_divergence_splits_disagreeing_lanes(self):
        program = assemble(_BRANCH_DIVERGE, entry="main")
        lanes = [patch_program(program, {"key": bytes([k])})
                 for k in (0, 1, 2, 3)]
        outcome = assert_batch_matches_scalar(lanes, track_dirty=True)
        assert len(outcome.divergences) == 1
        event = outcome.divergences[0]
        assert event.kind == "branch"
        assert program.instruction_at(event.pc).mnemonic == "beq"
        assert event.lanes == (1, 3)  # odd keys disagree with lane 0
        assert event.step >= 1
        assert "branch divergence" in event.describe()
        assert outcome.n_lockstep_lanes == 2

    def test_memory_address_divergence(self):
        program = assemble(_MEM_DIVERGE, entry="main")
        lanes = [patch_program(program, {"idx": bytes([i])})
                 for i in (0, 0, 1)]
        outcome = assert_batch_matches_scalar(lanes)
        assert [e.kind for e in outcome.divergences] == ["mem"]
        event = outcome.divergences[0]
        assert event.mnemonic == "ld"
        assert event.lanes == (2,)

    def test_jump_target_divergence(self):
        program = assemble(_JUMP_DIVERGE, entry="main")
        assert program.symbols["fn1"] - program.symbols["fn0"] == 8
        lanes = [patch_program(program, {"sel": bytes([s])})
                 for s in (0, 1)]
        outcome = assert_batch_matches_scalar(lanes)
        assert [e.kind for e in outcome.divergences] == ["jump"]
        assert outcome.divergences[0].mnemonic == "jalr"
        assert [r.exit_code for r in outcome.lane_results] == [1, 2]

    def test_syscall_signature_divergence(self):
        program = assemble(_WRITE_DIVERGE, entry="main")
        lanes = [patch_program(program, {"len": bytes([n])})
                 for n in (5, 3, 5)]
        outcome = assert_batch_matches_scalar(lanes, use_kernels=True)
        events = [e for e in outcome.divergences if e.kind == "syscall"]
        assert len(events) == 1
        assert events[0].mnemonic == "ecall"
        assert events[0].lanes == (1,)

    def test_exit_code_is_data_not_control(self):
        # A lane-varying a0 at exit is data; the lockstep signature only
        # covers a7, so different exit codes must NOT split lanes.
        program = assemble(_EXIT_DATA, entry="main")
        lanes = [patch_program(program, {"code": bytes([c])})
                 for c in (0, 5, 7)]
        outcome = assert_batch_matches_scalar(lanes)
        assert outcome.divergences == []
        assert [r.exit_code for r in outcome.lane_results] == [0, 5, 7]


# -- markers and run_to_marker ------------------------------------------------

_MARKED = """
.data
key: .byte 0
.text
main:
    roi.begin
    la   t0, key
    lbu  t1, 0(t0)
    andi t2, t1, 1
    iter.begin t2
    xor  t3, t1, t2
    iter.end
    roi.end
    li   a0, 0
    li   a7, 93
    ecall
"""


class TestMarkers:
    def test_iteration_labels_are_per_lane(self):
        program = assemble(_MARKED, entry="main")
        lanes = [patch_program(program, {"key": bytes([k])})
                 for k in (0, 1, 2, 3)]
        outcome = assert_batch_matches_scalar(lanes)
        assert outcome.divergences == []
        labels = [[m.label for m in result.markers
                   if m.mnemonic == "iter.begin"]
                  for result in outcome.lane_results]
        assert labels == [[0], [1], [0], [1]]

    def test_run_to_marker_stops_at_the_marker(self):
        program = assemble(_MARKED, entry="main")
        batch = BatchInterpreter([program, program])
        assert batch.run_to_marker("iter.begin") is True
        inst = program.instruction_at(batch.pc)
        assert inst.mnemonic == "iter.begin"  # not yet executed

    def test_run_to_marker_returns_false_when_absent(self):
        program = assemble(_EXIT_DATA, entry="main")
        batch = BatchInterpreter([program, program])
        assert batch.run_to_marker("roi.begin") is False
        assert batch.halted


# -- ground truth: the leaky and constant-time workloads ----------------------

class TestGroundTruth:
    def test_early_exit_memcmp_diverges_at_the_sub_bne_pair(self):
        # Cross-checks the localization fixture (tests/test_localize.py):
        # attribution ranks the sub/bne pair inside memcmp_ee; the lockstep
        # detector must point at exactly that branch.
        workload = make_early_exit_memcmp(n_pairs=6, length=6, seed=3,
                                          n_runs=4)
        program = workload.assemble()
        lanes = [patch_program(program, patches)
                 for patches in workload.inputs]
        outcome = assert_batch_matches_scalar(lanes)
        assert outcome.divergences
        for event in outcome.divergences:
            assert event.kind == "branch"
            assert event.mnemonic == "bne"
            assert event.pc >= program.symbols["memcmp_ee"]
            assert program.instruction_at(event.pc - 4).mnemonic == "sub"

    @pytest.mark.parametrize("factory", [
        lambda: make_ct_memcmp_safe(n_pairs=6, length=6, seed=3, n_runs=4),
        lambda: make_chacha20(n_keys=4, n_blocks=1, seed=6),
        lambda: make_mp_modexp_ct(n_keys=3, seed=2),
    ], ids=["ct-mem-cmp-safe", "chacha20", "mp-modexp-ct"])
    def test_constant_time_workloads_stay_fully_lockstep(self, factory):
        workload = factory()
        program = workload.assemble()
        lanes = [patch_program(program, patches)
                 for patches in workload.inputs]
        outcome = run_batch(lanes, max_steps=20_000_000)
        assert outcome.divergences == [], workload.name
        assert outcome.n_lockstep_lanes == len(lanes)
        assert all(r.exit_code == 0 for r in outcome.lane_results)


# -- BatchMemory and constructor contracts -----------------------------------

class TestBatchMemory:
    def test_unaligned_page_straddling_round_trip(self):
        memory = BatchMemory(2, 8192, page_size=4096, track_dirty_pages=True)
        values = np.array([0x1122334455667788, 0x99AABBCCDDEEFF00],
                          dtype=np.uint64)
        memory.store_lockstep(4093, values, 8)  # straddles the page boundary
        assert (memory.load_lockstep(4093, 8) == values).all()
        assert memory.read_bytes(0, 4093, 8) == \
            (0x1122334455667788).to_bytes(8, "little")
        assert memory.dirty_pages == {0, 4096}

    def test_out_of_range_accesses_raise(self):
        memory = BatchMemory(2, 4096)
        with pytest.raises(ExecutionError):
            memory.load_lockstep(4093, 8)
        with pytest.raises(ExecutionError):
            memory.store_lockstep(4095, np.zeros(2, dtype=np.uint64), 2)
        with pytest.raises(ExecutionError):
            memory.read_bytes(0, 4090, 8)
        with pytest.raises(ExecutionError):
            memory.write_bytes(1, 4096, b"x")
        with pytest.raises(ExecutionError):
            memory.write_bytes_all(-1, b"x")

    def test_constructor_validation(self):
        program = assemble(_EXIT_DATA, entry="main")
        other = assemble(_MARKED, entry="main")
        with pytest.raises(ValueError):
            BatchInterpreter([])
        with pytest.raises(ValueError):
            BatchInterpreter([program, other])
        with pytest.raises(ValueError):
            BatchInterpreter([program, program], kernels=[ProxyKernel()])


# -- lane-width selection -----------------------------------------------------

class TestLaneSelection:
    def test_parse(self):
        assert parse_batch_lanes("off") is None
        assert parse_batch_lanes("OFF") is None
        assert parse_batch_lanes("auto") == "auto"
        assert parse_batch_lanes(" 8 ") == 8
        for bad in ("0", "-2", "many"):
            with pytest.raises(ValueError):
                parse_batch_lanes(bad)

    def test_resolve(self):
        assert resolve_batch_lanes(None, 10) == 1
        assert resolve_batch_lanes("auto", 100) == DEFAULT_MAX_LANES
        assert resolve_batch_lanes("auto", 5) == 5
        assert resolve_batch_lanes("auto", 0) == 1
        assert resolve_batch_lanes(8, 3) == 3
        assert resolve_batch_lanes(4, 100) == 4

    def test_describe(self):
        assert describe_batch_lanes(None) == "off"
        assert describe_batch_lanes("auto") == "auto"
        assert describe_batch_lanes(8) == "8 lanes"
