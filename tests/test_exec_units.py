"""Execution-unit pool tests."""

from repro.uarch import MEGA_BOOM, SMALL_BOOM, ExecUnit, ExecUnitPool, divider_latency
from repro.uarch.uop import MicroOp
from repro.isa import Instruction


def _uop(seq=1, pc=0x1000):
    inst = Instruction("add", rd=1, rs1=2, rs2=3, pc=pc)
    return MicroOp(inst, seq)


class TestExecUnit:
    def test_pipelined_accepts_every_cycle(self):
        unit = ExecUnit("mul", 0, pipelined=True)
        unit.start(_uop(1), cycle=0, latency=3)
        assert unit.can_accept(1)
        unit.start(_uop(2), cycle=1, latency=3)
        assert len(unit.in_flight) == 2

    def test_unpipelined_blocks_until_done(self):
        unit = ExecUnit("div", 0, pipelined=False)
        unit.start(_uop(1), cycle=0, latency=12)
        assert not unit.can_accept(5)
        assert unit.retire_finished(11) == []
        finished = unit.retire_finished(12)
        assert len(finished) == 1
        assert unit.can_accept(12)

    def test_retire_returns_only_due_ops(self):
        unit = ExecUnit("mul", 0, pipelined=True)
        first = _uop(1)
        second = _uop(2)
        unit.start(first, cycle=0, latency=3)
        unit.start(second, cycle=1, latency=3)
        assert unit.retire_finished(3) == [first]
        assert unit.retire_finished(4) == [second]

    def test_squash_filters(self):
        unit = ExecUnit("alu", 0, pipelined=True)
        keep = _uop(1)
        drop = _uop(5)
        unit.start(keep, cycle=0, latency=1)
        unit.start(drop, cycle=0, latency=1)
        unit.squash(lambda u: u.seq > 3)
        assert [u for _, u in unit.in_flight] == [keep]

    def test_busy_pcs(self):
        unit = ExecUnit("alu", 0, pipelined=True)
        assert unit.busy_pcs() == ()
        unit.start(_uop(1, pc=0x42), cycle=0, latency=1)
        assert unit.busy_pcs() == (0x42,)
        assert unit.busy


class TestExecUnitPool:
    def test_counts_match_config(self):
        pool = ExecUnitPool(MEGA_BOOM)
        assert len(pool.alus) == MEGA_BOOM.alu_count
        assert len(pool.muls) == MEGA_BOOM.mul_count
        assert len(pool.divs) == MEGA_BOOM.div_count
        assert len(pool.agus) == MEGA_BOOM.agu_count

    def test_acquire_round_robins_over_free_units(self):
        pool = ExecUnitPool(SMALL_BOOM)
        unit = pool.acquire("div", cycle=0)
        unit.start(_uop(1), cycle=0, latency=12)
        assert pool.acquire("div", cycle=1) is None  # single busy divider

    def test_retire_collects_across_units(self):
        pool = ExecUnitPool(MEGA_BOOM)
        pool.acquire("alu", 0).start(_uop(1), cycle=0, latency=1)
        pool.acquire("mul", 0).start(_uop(2), cycle=0, latency=3)
        assert {u.seq for u in pool.retire_finished(1)} == {1}
        assert {u.seq for u in pool.retire_finished(3)} == {2}


class TestDividerLatency:
    def test_small_operands_finish_fast(self):
        assert divider_latency(1, 1, 12) <= 4

    def test_latency_grows_with_quotient_width(self):
        small = divider_latency(0xFF, 1, 12)
        large = divider_latency(0xFFFFFFFFFFFF, 1, 12)
        assert large > small

    def test_zero_divisor_does_not_crash(self):
        assert divider_latency(100, 0, 12) >= 3
