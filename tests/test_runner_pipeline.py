"""Runner / pipeline / report tests."""

import pytest

from repro.sampler import (
    MicroSampler,
    Workload,
    WorkloadError,
    adaptive_analyze,
    patch_program,
    render_bar_chart,
    render_histogram,
    render_report,
    run_campaign,
)
from repro.uarch import SMALL_BOOM
from repro.workloads.modexp import make_sam_ct

_TINY = """
.data
key: .byte 0
.text
main:
    roi.begin
    la t0, key
    lbu t1, 0(t0)
    andi t2, t1, 1
    iter.begin t2
    nop
    iter.end
    roi.end
    li a0, 0
    li a7, 93
    ecall
"""


def _tiny_workload(n_inputs=4):
    return Workload(
        name="tiny",
        source=_TINY,
        inputs=[{"key": bytes([i])} for i in range(n_inputs)],
    )


class TestPatching:
    def test_patch_replaces_bytes(self, sum_program):
        patched = patch_program(sum_program, {"arr": b"\xff" * 4})
        assert patched.data[:4] == bytearray(b"\xff" * 4)
        assert sum_program.data[:4] != bytearray(b"\xff" * 4)  # original intact

    def test_patch_unknown_symbol(self, sum_program):
        with pytest.raises(WorkloadError, match="unknown data symbol"):
            patch_program(sum_program, {"nope": b"x"})

    def test_patch_overflow_rejected(self, sum_program):
        with pytest.raises(WorkloadError, match="outside"):
            patch_program(sum_program, {"out": b"x" * 4096})


class TestCampaign:
    def test_runs_all_inputs_and_collects_iterations(self):
        campaign = run_campaign(_tiny_workload(4), SMALL_BOOM)
        assert len(campaign.runs) == 4
        assert len(campaign.iterations) == 4
        assert [r.label for r in campaign.iterations] == [0, 1, 0, 1]

    def test_empty_inputs_rejected(self):
        with pytest.raises(WorkloadError, match="no inputs"):
            run_campaign(Workload(name="x", source=_TINY), SMALL_BOOM)

    def test_nonzero_exit_aborts(self):
        bad = Workload(
            name="bad",
            source=".text\nmain:\n li a0, 1\n li a7, 93\n ecall",
            inputs=[{}],
        )
        with pytest.raises(WorkloadError, match="exited"):
            run_campaign(bad, SMALL_BOOM)

    def test_timings_are_measured(self):
        campaign = run_campaign(_tiny_workload(2), SMALL_BOOM)
        assert campaign.simulate_seconds >= 0
        assert campaign.parse_seconds >= 0
        assert campaign.total_cycles() > 0


class TestPipeline:
    def test_report_covers_all_features(self):
        report = MicroSampler(SMALL_BOOM).analyze(_tiny_workload(6))
        assert len(report.units) == 16
        assert report.n_iterations == 6
        assert report.n_classes == 2
        assert report.timings is not None

    def test_feature_subset(self):
        sampler = MicroSampler(SMALL_BOOM, features=["ROB-PC", "SQ-ADDR"])
        report = sampler.analyze(_tiny_workload(4))
        assert set(report.units) == {"ROB-PC", "SQ-ADDR"}

    def test_notiming_analysis_optional(self):
        sampler = MicroSampler(SMALL_BOOM, features=["ROB-PC"],
                               analyze_timing_removed=False)
        report = sampler.analyze(_tiny_workload(4))
        assert report.units["ROB-PC"].association_notiming is None

    def test_custom_thresholds_respected(self):
        # A threshold of 0 with alpha 1.0 flags everything with V > 0.
        sampler = MicroSampler(SMALL_BOOM, features=["ROB-PC"],
                               v_threshold=2.0)
        report = sampler.analyze(_tiny_workload(4))
        assert not report.leakage_detected

    def test_cramers_v_accessors(self):
        report = MicroSampler(SMALL_BOOM, features=["ROB-PC"]) \
            .analyze(_tiny_workload(4))
        assert set(report.cramers_v_by_unit()) == {"ROB-PC"}
        assert set(report.cramers_v_by_unit_notiming()) == {"ROB-PC"}


class TestAdaptiveAnalyze:
    def test_grows_until_significant_or_cap(self):
        calls = []

        def factory(n, seed):
            calls.append(n)
            workload = make_sam_ct(n_keys=max(n // 8, 1), seed=seed)
            return workload

        sampler = MicroSampler(SMALL_BOOM, features=["ROB-OCPNCY"])
        report = adaptive_analyze(factory, start_inputs=8, max_inputs=16,
                                  sampler=sampler)
        assert calls[0] == 8
        assert report is not None


class TestRendering:
    def test_render_report_text(self):
        report = MicroSampler(SMALL_BOOM, features=["ROB-PC"]) \
            .analyze(_tiny_workload(4))
        text = render_report(report, show_notiming=True)
        assert "ROB-PC" in text
        assert "tiny" in text

    def test_render_bar_chart(self):
        text = render_bar_chart({"A": 0.5, "B": 1.0}, title="t", width=10)
        assert "A" in text and "#" * 10 in text

    def test_render_bar_chart_clamps(self):
        text = render_bar_chart({"X": 5.0}, width=10)
        assert "#" * 10 in text

    def test_render_histogram(self):
        text = render_histogram([1, 1, 2, 3, 3, 3], bins=3, title="h")
        assert "h" in text and "#" in text

    def test_render_histogram_degenerate(self):
        text = render_histogram([5, 5, 5])
        assert "identical" in text
        assert "(no samples)" in render_histogram([])


_DIVERGENT_PROLOGUE = """
.data
key: .byte 0
.text
main:
    la   t0, key
    lbu  t1, 0(t0)
    beqz t1, skip
    addi t2, t1, 1
skip:
    roi.begin
    andi t3, t1, 1
    iter.begin t3
    nop
    iter.end
    roi.end
    li   a0, 0
    li   a7, 93
    ecall
"""


class TestBatchLockstepCampaign:
    """``--batch-lanes auto`` must be verdict-identical to ``off``.

    Lane batching (the functional prepass *and* the lane-batched
    cycle-accurate core) only changes how the same simulation is carried —
    never its outcome — so apart from the surfaced ``divergences`` (a leak
    signal ``off`` cannot observe), reports and localization dicts must
    match byte-for-byte, cold or warm cache, serial or parallel.
    """

    def _report_dict(self, workload, *, batch_lanes, jobs=1, cache=None):
        from repro.sampler.report import report_to_dict
        from tests.test_checkpoint import _scrub_timings

        sampler = MicroSampler(SMALL_BOOM, warmup_insts=64,
                               batch_lanes=batch_lanes, jobs=jobs,
                               cache=cache)
        return _scrub_timings(report_to_dict(sampler.analyze(workload)))

    def test_auto_matches_off(self):
        from repro.workloads.bootstrap import with_bootstrap
        from repro.workloads.memcmp import make_early_exit_memcmp

        for workload in (with_bootstrap(make_sam_ct(n_keys=4), insts=600),
                         make_early_exit_memcmp(n_pairs=2, n_runs=2)):
            off = self._report_dict(workload, batch_lanes=None)
            auto = self._report_dict(workload, batch_lanes="auto")
            divergences = auto.pop("divergences")
            assert off.pop("divergences") == []
            assert auto == off, workload.name
            if workload.name.startswith("sam-ct"):
                # Constant-time code stays lockstep end to end.
                assert divergences == []
            else:
                # The early-exit compare branches on the secret: the batched
                # core observes that directly as a cross-lane divergence.
                assert any(event["kind"] == "branch"
                           for event in divergences)

    def test_auto_matches_off_parallel_and_cached(self, tmp_path):
        from repro.sampler import TraceCache
        from repro.workloads.bootstrap import with_bootstrap

        workload = with_bootstrap(make_sam_ct(n_keys=4), insts=600)
        dicts = {}
        for mode, lanes in (("off", None), ("auto", "auto")):
            cache = TraceCache(tmp_path / mode)
            dicts[mode, "cold"] = self._report_dict(
                workload, batch_lanes=lanes, jobs=4, cache=cache)
            dicts[mode, "warm"] = self._report_dict(
                workload, batch_lanes=lanes, jobs=4, cache=cache)
        assert dicts["auto", "cold"] == dicts["off", "cold"]
        assert dicts["auto", "warm"] == dicts["off", "cold"]
        assert dicts["off", "warm"] == dicts["off", "cold"]
        # The prepass persisted its captures under the cache root.
        assert list((tmp_path / "auto").rglob("*.ckpt"))

    def test_localization_identical_under_batch_prepass(self, tmp_path):
        from repro.localize.annotate import localization_to_dict
        from repro.workloads.memcmp import make_early_exit_memcmp
        from tests.test_checkpoint import _scrub_timings

        workload = make_early_exit_memcmp(n_pairs=2, n_runs=2)
        dicts = {}
        for mode, lanes in (("off", None), ("auto", "auto")):
            sampler = MicroSampler(SMALL_BOOM, features=("ROB-PC",),
                                   warmup_insts=64, batch_lanes=lanes)
            dicts[mode] = _scrub_timings(
                localization_to_dict(sampler.localize(workload)))
        assert dicts["auto"] == dicts["off"]

    def test_divergent_prologue_surfaces_in_report(self):
        from repro.sampler.report import report_to_dict

        workload = Workload(
            name="divergent-prologue",
            source=_DIVERGENT_PROLOGUE,
            inputs=[{"key": bytes([k])} for k in (0, 1, 2, 3)],
        )
        sampler = MicroSampler(SMALL_BOOM, warmup_insts=64,
                               batch_lanes="auto")
        report = sampler.analyze(workload)
        # The key-dependent prologue branch surfaces twice: once from the
        # functional prepass (``step`` counts instructions) and once from the
        # lane-batched cycle-accurate core (``step`` counts cycles).
        assert len(report.divergences) == 2
        for event in report.divergences:
            assert event.kind == "branch"
            assert event.lanes == (1, 2, 3)  # remapped to run indices
        event = report.divergences[0]

        rendered = render_report(report)
        assert "DIVERGENT PROLOGUE" in rendered
        assert event.describe() in rendered

        payload = report_to_dict(report)
        assert payload["divergences"] == [
            {"pc": e.pc, "step": e.step, "kind": "branch",
             "mnemonic": e.mnemonic, "lanes": [1, 2, 3]}
            for e in report.divergences
        ]

        # Apart from the surfaced divergences, the analysis itself is
        # unchanged versus the scalar path.
        off = MicroSampler(SMALL_BOOM, warmup_insts=64).analyze(workload)
        assert off.divergences == []
        assert report.leakage_detected == off.leakage_detected
        assert report.leaky_units == off.leaky_units
