"""Tests for the input-coverage significance sweep."""

import pytest

from repro.sampler import significance_sweep
from repro.uarch import SMALL_BOOM
from repro.workloads.modexp import make_sam_ct, make_sam_leaky


@pytest.fixture(scope="module")
def leaky_sweep():
    return significance_sweep(
        lambda n, seed: make_sam_leaky(n_keys=n, seed=seed),
        sizes=(1, 2, 4), feature_ids=["EUU-MUL"], config=SMALL_BOOM,
    )


def test_points_cover_requested_sizes(leaky_sweep):
    assert [p.n_inputs for p in leaky_sweep.points] == [1, 2, 4]
    assert [p.n_iterations for p in leaky_sweep.points] == [32, 64, 128]


def test_leak_p_value_shrinks_with_inputs(leaky_sweep):
    p_values = [point.units["EUU-MUL"][1] for point in leaky_sweep.points]
    assert p_values[-1] < p_values[0]
    assert p_values[-1] < 0.05


def test_first_significant(leaky_sweep):
    threshold = leaky_sweep.first_significant("EUU-MUL")
    assert threshold is not None and threshold <= 4


def test_safe_workload_never_significant():
    sweep = significance_sweep(
        lambda n, seed: make_sam_ct(n_keys=n, seed=seed),
        sizes=(1, 2, 4), feature_ids=["EUU-MUL", "ROB-PC"],
        config=SMALL_BOOM,
    )
    assert sweep.first_significant("EUU-MUL") is None
    assert sweep.first_significant("ROB-PC") is None


def test_render_is_textual(leaky_sweep):
    text = leaky_sweep.render(["EUU-MUL"])
    assert "sam-leaky" in text
    assert "EUU-MUL" in text
    assert text.count("\n") >= 4
