"""Functional (golden-model) interpreter tests."""

import pytest

from repro.isa import (
    ExecutionError,
    Interpreter,
    assemble,
    run_program,
)
from repro.kernel import ProxyKernel, SyscallError
from tests.conftest import SUM_PROGRAM_EXIT


def _run(source, **kwargs):
    return run_program(assemble(source, entry="main"), **kwargs)


def test_sum_program(sum_program):
    assert run_program(sum_program).exit_code == SUM_PROGRAM_EXIT


def test_exit_code_is_signed():
    result = _run(".text\nmain:\n li a0, -5\n li a7, 93\n ecall")
    assert result.exit_code == -5


def test_memory_byte_halfword_access():
    result = _run("""
.data
buf: .zero 16
.text
main:
    la t0, buf
    li t1, 0x1234
    sh t1, 0(t0)
    lbu a0, 1(t0)     # high byte of the halfword
    li a7, 93
    ecall
""")
    assert result.exit_code == 0x12


def test_signed_load_sign_extends():
    result = _run("""
.data
v: .byte 0xff
.text
main:
    la t0, v
    lb t1, 0(t0)
    li t2, -1
    sub a0, t1, t2    # 0 if sign-extended correctly
    li a7, 93
    ecall
""")
    assert result.exit_code == 0


def test_call_and_return():
    result = _run("""
.text
main:
    li a0, 20
    call inc
    call inc
    li a7, 93
    ecall
inc:
    addi a0, a0, 1
    ret
""")
    assert result.exit_code == 22


def test_recursion_uses_stack():
    result = _run("""
.text
main:
    li a0, 6
    call fact
    li a7, 93
    ecall
fact:                   # a0! iteratively-recursive
    li t0, 2
    bge a0, t0, rec
    li a0, 1
    ret
rec:
    addi sp, sp, -16
    sd ra, 8(sp)
    sd a0, 0(sp)
    addi a0, a0, -1
    call fact
    ld t1, 0(sp)
    mul a0, a0, t1
    ld ra, 8(sp)
    addi sp, sp, 16
    ret
""")
    assert result.exit_code == 720


def test_markers_are_recorded():
    result = _run("""
.text
main:
    roi.begin
    li t0, 7
    iter.begin t0
    nop
    iter.end
    roi.end
    li a0, 0
    li a7, 93
    ecall
""")
    kinds = [m.mnemonic for m in result.markers]
    assert kinds == ["roi.begin", "iter.begin", "iter.end", "roi.end"]
    assert result.markers[1].label == 7


def test_arch_trace_records_addresses():
    program = assemble("""
.data
x: .dword 1
.text
main:
    la t0, x
    ld t1, 0(t0)
    sd t1, 0(t0)
    li a0, 0
    li a7, 93
    ecall
""", entry="main")
    interp = Interpreter(program, record_arch_trace=True)
    result = interp.run()
    loads = [e for e in result.arch_trace if e.kind == "load"]
    stores = [e for e in result.arch_trace if e.kind == "store"]
    assert loads[0].address == program.symbols["x"]
    assert stores[0].address == program.symbols["x"]
    assert all(e.step > 0 for e in result.arch_trace)


def test_arch_trace_disabled_by_default(sum_program):
    result = run_program(sum_program)
    assert result.arch_trace == []


def test_pc_out_of_range_raises():
    program = assemble(".text\nmain: j main", entry="main")
    interp = Interpreter(program)
    interp.pc = 0x9999999
    with pytest.raises(ExecutionError, match="out of text range"):
        interp.step()


def test_infinite_loop_hits_step_limit():
    program = assemble(".text\nmain: j main", entry="main")
    with pytest.raises(ExecutionError, match="did not halt"):
        Interpreter(program).run(max_steps=1000)


def test_memory_bounds_checked():
    result_program = assemble("""
.text
main:
    li t0, -8
    ld t1, 0(t0)
""", entry="main")
    with pytest.raises(ExecutionError, match="out of range"):
        Interpreter(result_program).run(max_steps=10)


def test_unknown_syscall_raises():
    program = assemble(".text\nmain:\n li a7, 999\n ecall", entry="main")
    with pytest.raises((ExecutionError, SyscallError)):
        Interpreter(program).run(max_steps=100)


def test_proxy_kernel_write_syscall():
    program = assemble("""
.data
msg: .asciz "hello"
.text
main:
    li a7, 64
    li a0, 1
    la a1, msg
    li a2, 5
    ecall
    li a0, 0
    li a7, 93
    ecall
""", entry="main")
    kernel = ProxyKernel()
    interp = Interpreter(program, syscall_handler=lambda i: kernel.handle_ecall(i))
    interp.run()
    assert kernel.console_text == "hello"
    assert kernel.exit_code == 0


def test_ebreak_halts():
    result = _run(".text\nmain:\n li a0, 3\n ebreak")
    assert result.exit_code == 0  # default exit code; halted via ebreak


def test_fence_is_noop():
    result = _run(".text\nmain:\n fence\n li a0, 1\n li a7, 93\n ecall")
    assert result.exit_code == 1


def test_x0_writes_are_dropped():
    result = _run("""
.text
main:
    li t0, 5
    add zero, t0, t0
    mv a0, zero
    li a7, 93
    ecall
""")
    assert result.exit_code == 0


def test_jalr_clears_low_bit():
    result = _run("""
.text
main:
    la t0, target
    ori t0, t0, 1
    jalr ra, t0, 0
    li a7, 93
    ecall
target:
    li a0, 9
    ret
""")
    assert result.exit_code == 9


def test_w_arithmetic_wraps():
    result = _run("""
.text
main:
    li t0, 0x7fffffff
    addiw t0, t0, 1
    sraiw a0, t0, 31  # sign bit -> -1
    li a7, 93
    ecall
""")
    assert result.exit_code == -1


def test_step_count_matches_instructions(sum_program):
    result = run_program(sum_program)
    # setup (la=2, li, li) + 8 iterations of 7 + tail (mv, call, slli, ret,
    # la=2, sd, li, ecall)
    assert result.steps == 4 + 8 * 7 + 9


class TestFlatMemorySemantics:
    """The explicit access contract of FlatMemory (see its docstring):
    unaligned accesses are plain byte-wise little-endian at every size,
    page/alignment boundaries are invisible, and nothing ever wraps."""

    def _memory(self, size=8192):
        from repro.isa.interpreter import FlatMemory

        return FlatMemory(size)

    def test_unaligned_round_trip_at_every_size(self):
        memory = self._memory()
        for size in (1, 2, 4, 8):
            for address in (1, 3, 7, 4093):  # 4093 straddles a page edge
                value = (0x1122334455667788 >> (8 * (8 - size))) \
                    & ((1 << (8 * size)) - 1)
                memory.store(address, value, size)
                assert memory.load(address, size) == value
                assert memory.read_bytes(address, size) == \
                    value.to_bytes(size, "little")

    def test_page_straddling_store_is_byte_wise_little_endian(self):
        memory = self._memory()
        memory.store(4094, 0xAABBCCDD, 4)  # bytes at 4094..4097
        assert memory.read_bytes(4094, 4) == bytes([0xDD, 0xCC, 0xBB, 0xAA])
        assert memory.load(4095, 2) == 0xBBCC  # re-read across the edge

    def test_accesses_never_wrap_past_the_end(self):
        memory = self._memory(size=4096)
        memory.store(4088, 0, 8)  # the last fully in-bounds doubleword
        for method in (lambda: memory.load(4095, 2),
                       lambda: memory.store(4089, 0, 8),
                       lambda: memory.read_bytes(4090, 8),
                       lambda: memory.write_bytes(4095, b"xy")):
            with pytest.raises(ExecutionError, match="out of range"):
                method()

    def test_negative_wraparound_addresses_are_rejected(self):
        # The interpreter computes effective addresses mod 2^64, so a
        # negative base+offset arrives as a huge address; both forms must
        # be rejected by the same bound rather than wrapping to offset 0.
        memory = self._memory(size=4096)
        huge = (-8) & 0xFFFFFFFFFFFFFFFF
        with pytest.raises(ExecutionError, match="out of range"):
            memory.load(huge, 8)
        with pytest.raises(ExecutionError, match="out of range"):
            memory.load(-8, 8)

    def test_read_bytes_never_silently_truncates(self):
        memory = self._memory(size=4096)
        assert len(memory.read_bytes(4090, 6)) == 6
        with pytest.raises(ExecutionError, match="out of range"):
            memory.read_bytes(4090, 7)

    def test_tracking_memory_marks_both_pages_of_a_straddle(self):
        from repro.isa.interpreter import TrackingMemory

        memory = TrackingMemory(8192, page_size=4096)
        memory.store(4093, 0x0123456789ABCDEF, 8)
        assert memory.dirty_pages == {0, 4096}
        memory.dirty_pages.clear()
        memory.write_bytes(4095, b"ab")
        assert memory.dirty_pages == {0, 4096}
        memory.dirty_pages.clear()
        memory.store(16, 1, 1)
        assert memory.dirty_pages == {0}
