"""Tests for core configuration, micro-op records and the disassembler."""

import dataclasses

import pytest

from repro.isa import Instruction, assemble, format_instruction, format_program
from repro.uarch import MEGA_BOOM, SMALL_BOOM, CoreConfig
from repro.uarch.config import CacheConfig
from repro.uarch.uop import MicroOp


class TestCacheConfig:
    def test_capacity(self):
        config = CacheConfig(sets=64, ways=8)
        assert config.capacity_bytes == 64 * 8 * 64  # 32 KiB

    def test_state_bits_positive_and_monotone(self):
        small = CacheConfig(sets=64, ways=4)
        large = CacheConfig(sets=64, ways=8)
        assert 0 < small.state_bits() < large.state_bits()


class TestCoreConfig:
    def test_table_iii_mega_values(self):
        assert MEGA_BOOM.fetch_width == 8
        assert MEGA_BOOM.decode_width == 4
        assert MEGA_BOOM.issue_width == 4
        assert MEGA_BOOM.rob_entries == 128
        assert MEGA_BOOM.int_prf_entries == 128
        assert MEGA_BOOM.ldq_entries == MEGA_BOOM.stq_entries == 32
        assert MEGA_BOOM.lfb_entries == 64
        assert MEGA_BOOM.bp_entries == 2048
        assert MEGA_BOOM.dcache.sets == 64 and MEGA_BOOM.dcache.ways == 8
        assert MEGA_BOOM.dtlb_entries == 32

    def test_table_iii_small_values(self):
        assert SMALL_BOOM.fetch_width == 4
        assert SMALL_BOOM.decode_width == 1
        assert SMALL_BOOM.rob_entries == 32
        assert SMALL_BOOM.int_prf_entries == 52
        assert SMALL_BOOM.dcache.ways == 4
        assert SMALL_BOOM.dtlb_entries == 8

    def test_commit_width_defaults_to_decode_width(self):
        assert MEGA_BOOM.commit_width == MEGA_BOOM.decode_width
        custom = MEGA_BOOM.with_(commit_width=2)
        assert custom.commit_width == 2

    def test_with_returns_modified_copy(self):
        modified = MEGA_BOOM.with_(fast_bypass=True)
        assert modified.fast_bypass and not MEGA_BOOM.fast_bypass
        assert modified.rob_entries == MEGA_BOOM.rob_entries

    def test_config_is_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            MEGA_BOOM.fast_bypass = True

    def test_mega_is_larger_than_small(self):
        assert MEGA_BOOM.core_structure_bits() > \
            3 * SMALL_BOOM.core_structure_bits()
        assert MEGA_BOOM.state_bits() > SMALL_BOOM.state_bits()

    def test_state_bits_near_paper_claim(self):
        """The paper deploys on 'approximately 700K state bits'."""
        assert 400_000 < MEGA_BOOM.state_bits() < 900_000


class TestMicroOp:
    def _uop(self, mnemonic="add", **kwargs):
        return MicroOp(Instruction(mnemonic, **kwargs), seq=7)

    def test_initial_state(self):
        uop = self._uop(rd=1, rs1=2, rs2=3)
        assert not uop.complete and not uop.committed
        assert uop.prd == -1 and uop.old_prd == -1
        assert uop.rob_slot == -1

    def test_mem_size(self):
        assert self._uop("lw", rd=1, rs1=2).mem_size == 4
        assert self._uop("sd", rs1=1, rs2=2).mem_size == 8

    def test_rob_pcs_with_folds(self):
        uop = self._uop(rd=1, rs1=2, rs2=3)
        uop.inst.pc = 0x100
        uop.pc = 0x100
        assert uop.rob_pcs() == (0x100,)
        uop.folded_pcs = (0x90, 0x94)
        assert uop.rob_pcs() == (0x90, 0x94, 0x100)

    def test_load_store_flags(self):
        assert self._uop("ld", rd=1, rs1=2).is_load
        assert self._uop("sb", rs1=1, rs2=2).is_store
        assert not self._uop("add", rd=1).is_load


class TestDisassembler:
    @pytest.mark.parametrize("inst,text", [
        (Instruction("add", rd=10, rs1=11, rs2=12), "add a0, a1, a2"),
        (Instruction("addi", rd=5, rs1=5, imm=-3), "addi t0, t0, -3"),
        (Instruction("lw", rd=6, rs1=2, imm=16), "lw t1, 16(sp)"),
        (Instruction("sd", rs1=8, rs2=9, imm=-8), "sd s1, -8(s0)"),
        (Instruction("lui", rd=7, imm=0x12000), "lui t2, 0x12000"),
        (Instruction("jalr", rd=0, rs1=1, imm=0), "jalr zero, 0(ra)"),
        (Instruction("ecall",), "ecall"),
        (Instruction("roi.begin",), "roi.begin"),
        (Instruction("iter.begin", rs1=25), "iter.begin s9"),
    ])
    def test_single_instructions(self, inst, text):
        assert format_instruction(inst) == text

    def test_branch_shows_absolute_target(self):
        inst = Instruction("beq", rs1=1, rs2=2, imm=-8, pc=0x1000)
        assert format_instruction(inst) == "beq ra, sp, 0xff8"

    def test_jal_shows_target(self):
        inst = Instruction("jal", rd=1, imm=0x40, pc=0x100)
        assert format_instruction(inst) == "jal ra, 0x140"

    def test_format_program_lines(self):
        program = assemble(".text\nmain:\n nop\n nop\n")
        text = format_program(program.instructions)
        lines = text.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("0x00010000:")
        assert "addi zero, zero, 0" in lines[0]

    def test_str_dunder_uses_disassembler(self):
        assert str(Instruction("add", rd=1, rs1=2, rs2=3)) == "add ra, sp, gp"
