"""Cross-config sweep engine: bit-identity, sharing and projection.

The sweep's contract is that it changes *where* work happens, never *what*
comes out: every config leg's report must be bit-identical to running
``MicroSampler(config).analyze(workload)`` standalone with the same cache
state — serially, under ``jobs=4``, through a ``WorkerPool``, with the
taint prescreen on, and on both cold and warm caches.  The satellites are
pinned here too: cross-config checkpoint sharing (capture under MegaBoom,
hit under SmallBoom), the memoized config digest, and the per-config
``cache stats`` breakdown.
"""

from __future__ import annotations

import json
from types import SimpleNamespace

import pytest

from repro.sampler import sweep_configs, sweep_to_dict
from repro.sampler.checkpoint import DEFAULT_WARMUP_INSTS
from repro.sampler.pipeline import MicroSampler
from repro.sampler.report import report_to_dict
from repro.sampler.trace_cache import TraceCache, config_digest
from repro.uarch.config import MEDIUM_BOOM, MEGA_BOOM, SMALL_BOOM
from repro.workloads.chacha import make_chacha20
from repro.workloads.memcmp import make_early_exit_memcmp


def _ee_memcmp():
    return make_early_exit_memcmp(n_pairs=8, seed=2, n_runs=2)


def _chacha():
    return make_chacha20(n_keys=2, n_blocks=1, seed=3)


def _scrub(report) -> dict:
    """Report JSON minus wall-clock keys — everything else must match."""
    payload = report_to_dict(report)
    payload.pop("timings_seconds", None)
    payload.pop("profile", None)
    return payload


def _standalone(workload, config, **kwargs):
    return MicroSampler(config, **kwargs).analyze(workload)


# -- bit-identity differentials ----------------------------------------------


def test_sweep_matches_standalone_cold_and_warm(tmp_path):
    workload = _ee_memcmp()
    configs = (SMALL_BOOM, MEGA_BOOM)

    # Naive loop: sequential standalone runs sharing one cold cache (the
    # first leg captures checkpoints, the second loads them — the same
    # shape the sweep produces).
    naive_cache = TraceCache(tmp_path / "naive")
    naive = {
        config.name: _scrub(_standalone(
            workload, config, cache=naive_cache,
            warmup_insts=DEFAULT_WARMUP_INSTS, batch_lanes="auto"))
        for config in configs
    }

    sweep_cache = TraceCache(tmp_path / "sweep")
    cold = sweep_configs(workload, configs, cache=sweep_cache,
                         warmup_insts=DEFAULT_WARMUP_INSTS,
                         batch_lanes="auto")
    for config in configs:
        assert _scrub(cold.reports[config.name]) == naive[config.name]

    # Warm rerun: everything replays from the cache, reports unchanged.
    warm = sweep_configs(workload, configs, cache=sweep_cache,
                         warmup_insts=DEFAULT_WARMUP_INSTS,
                         batch_lanes="auto")
    for config in configs:
        assert _scrub(warm.reports[config.name]) == naive[config.name]
    for leg in warm.legs:
        assert leg.n_cached == leg.n_inputs
        assert leg.n_simulated == 0


def test_sweep_matches_standalone_parallel_jobs():
    # chacha20 runs lockstep (no divergence events), so even cacheless
    # legs are bit-identical to cacheless standalone runs; jobs=4 fans the
    # two legs' lane groups out concurrently.
    workload = _chacha()
    configs = (SMALL_BOOM, MEGA_BOOM)
    result = sweep_configs(workload, configs, jobs=4,
                           warmup_insts=DEFAULT_WARMUP_INSTS,
                           batch_lanes="auto")
    for config in configs:
        standalone = _scrub(_standalone(
            workload, config, warmup_insts=DEFAULT_WARMUP_INSTS,
            batch_lanes="auto"))
        assert _scrub(result.reports[config.name]) == standalone


def test_sweep_matches_standalone_worker_pool(tmp_path):
    from repro.sampler.exec_backend import WorkerPool

    workload = _chacha()
    configs = (SMALL_BOOM, MEGA_BOOM)
    serial = sweep_configs(workload, configs,
                           cache=TraceCache(tmp_path / "serial"),
                           warmup_insts=DEFAULT_WARMUP_INSTS,
                           batch_lanes="auto")
    with WorkerPool(2) as pool:
        pooled = sweep_configs(workload, configs,
                               cache=TraceCache(tmp_path / "pooled"),
                               warmup_insts=DEFAULT_WARMUP_INSTS,
                               batch_lanes="auto", pool=pool)
    for config in configs:
        assert _scrub(pooled.reports[config.name]) \
            == _scrub(serial.reports[config.name])


def test_sweep_taint_projection_per_config(tmp_path):
    # The shared publicness witness projects differently per config: base
    # SmallBoom prunes everything but the data-carrying channel on the
    # constant-time chacha20, while the fast-bypass variant models
    # value-dependent ALU latency and must prune nothing.
    workload = _chacha()
    fb = SMALL_BOOM.with_(fast_bypass=True, name="SmallBoomFB")
    configs = (SMALL_BOOM, fb)

    naive_cache = TraceCache(tmp_path / "naive")
    naive = {
        config.name: _scrub(_standalone(
            workload, config, taint=True, cache=naive_cache,
            warmup_insts=DEFAULT_WARMUP_INSTS, batch_lanes="auto"))
        for config in configs
    }
    result = sweep_configs(workload, configs, taint=True,
                           cache=TraceCache(tmp_path / "sweep"),
                           warmup_insts=DEFAULT_WARMUP_INSTS,
                           batch_lanes="auto")
    for config in configs:
        assert _scrub(result.reports[config.name]) == naive[config.name]

    pruned = {leg.name: set(leg.report.taint.pruned) for leg in result.legs}
    assert pruned["SmallBoom"], "base config should prune on CT chacha20"
    assert not pruned["SmallBoomFB"], \
        "fast-bypass models value-dependent latency: nothing is provably safe"


def test_sweep_rejects_duplicate_config_names():
    with pytest.raises(ValueError, match="distinct names"):
        sweep_configs(_chacha(), (SMALL_BOOM, SMALL_BOOM))
    with pytest.raises(ValueError, match="at least one"):
        sweep_configs(_chacha(), ())


# -- cross-config checkpoint sharing (satellite: pinned behaviour) -----------


def test_checkpoints_shared_across_configs(tmp_path, monkeypatch):
    """Capture under MegaBoom, then run SmallBoom: the store is hit.

    ``checkpoint_key`` deliberately excludes the core configuration — a
    checkpoint is architectural state.  This test turns that comment into
    behaviour: the second config's campaign must not capture anything.
    """
    import repro.sampler.checkpoint as checkpoint_mod

    calls = []
    real_capture = checkpoint_mod.capture_checkpoints_batch

    def counting_capture(*args, **kwargs):
        calls.append(1)
        return real_capture(*args, **kwargs)

    monkeypatch.setattr(checkpoint_mod, "capture_checkpoints_batch",
                        counting_capture)

    workload = _ee_memcmp()
    cache = TraceCache(tmp_path / "cache")
    _standalone(workload, MEGA_BOOM, cache=cache,
                warmup_insts=DEFAULT_WARMUP_INSTS, batch_lanes="auto")
    captures_after_first = len(calls)
    assert captures_after_first >= 1

    _standalone(workload, SMALL_BOOM, cache=cache,
                warmup_insts=DEFAULT_WARMUP_INSTS, batch_lanes="auto")
    assert len(calls) == captures_after_first, \
        "SmallBoom re-captured checkpoints MegaBoom already stored"


# -- satellite: memoized config digest ---------------------------------------


def test_config_digest_memoized_per_instance():
    import dataclasses

    from repro.util.hashing import stable_hex_digest

    first = config_digest(SMALL_BOOM)
    assert config_digest(SMALL_BOOM) is first  # cached string object
    assert first == stable_hex_digest(dataclasses.asdict(SMALL_BOOM))
    # Distinct configs get distinct digests; equal-by-value copies share.
    assert config_digest(MEGA_BOOM) != first
    assert config_digest(SMALL_BOOM.with_()) == first


# -- satellite: per-config cache stats ---------------------------------------


def test_cache_stats_break_down_per_config(tmp_path):
    from repro.sampler.trace_cache import cache_stats

    workload = _chacha()
    cache = TraceCache(tmp_path / "cache")
    sweep_configs(workload, (SMALL_BOOM, MEGA_BOOM), cache=cache,
                  warmup_insts=DEFAULT_WARMUP_INSTS, batch_lanes="auto")

    stats = cache_stats(tmp_path / "cache")
    per_config = stats["per_config"]
    names = {bucket["name"] for bucket in per_config.values()}
    assert names == {"SmallBoom", "MegaBoom"}
    for digest, bucket in per_config.items():
        assert bucket["entries"] >= 1
        assert bucket["bytes"] > 0
        assert digest == config_digest(
            SMALL_BOOM if bucket["name"] == "SmallBoom" else MEGA_BOOM)


# -- reachability projection helper ------------------------------------------


def test_project_reachability_matches_per_config():
    from repro.uarch.reachability import (
        project_reachability,
        reachable_features,
    )

    publicness = SimpleNamespace(
        escalated=False, tainted_branch_pcs=frozenset(),
        tainted_mem_pcs=frozenset(), transient_mem_pcs=frozenset(),
        tainted_div_pcs=frozenset(), tainted_pcs=frozenset({0x100}))
    features = ("LFB-Data", "ROB-PC", "EUU-ALU")
    fb = SMALL_BOOM.with_(fast_bypass=True, name="SmallBoomFB")
    projected = project_reachability(publicness, (SMALL_BOOM, fb), features)
    assert projected == {
        "SmallBoom": reachable_features(publicness, SMALL_BOOM, features),
        "SmallBoomFB": reachable_features(publicness, fb, features),
    }
    assert projected["SmallBoom"] == frozenset({"LFB-Data"})
    assert projected["SmallBoomFB"] == frozenset(features)


# -- serialization and CLI ---------------------------------------------------


def test_sweep_to_dict_embeds_standalone_reports(tmp_path):
    workload = _chacha()
    configs = (SMALL_BOOM, MEDIUM_BOOM)
    result = sweep_configs(workload, configs,
                           cache=TraceCache(tmp_path / "cache"),
                           warmup_insts=DEFAULT_WARMUP_INSTS,
                           batch_lanes="auto")
    payload = sweep_to_dict(result)
    assert payload["configs"] == ["SmallBoom", "MediumBoom"]
    assert set(payload["config_digests"]) == {"SmallBoom", "MediumBoom"}
    assert payload["config_digests"]["SmallBoom"] == config_digest(SMALL_BOOM)
    # Embedded reports are exactly report_to_dict of each leg.
    for leg in result.legs:
        assert payload["reports"][leg.name] == report_to_dict(leg.report)
    # The matrix mirrors every unit's association and verdict.
    for feature_id, row in payload["matrix"].items():
        for name, cell in row.items():
            unit = payload["reports"][name]["units"][feature_id]
            assert cell["cramers_v"] == unit["association"]["cramers_v"]
            assert cell["leaky"] == unit["leaky"]
    assert "commit" in payload["meta"]
    json.dumps(payload)  # JSON-serializable end to end
    assert "cross-config sweep" in result.render()


def test_cli_sweep_json(tmp_path, capsys):
    from repro.cli import main

    code = main(["sweep", "ee-mem-cmp", "--configs", "mega,small",
                 "--inputs", "2", "--cache-dir", str(tmp_path / "cache"),
                 "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert payload["configs"] == ["MegaBoom", "SmallBoom"]
    assert set(payload["reports"]) == {"MegaBoom", "SmallBoom"}
    assert code == (1 if payload["leakage_detected"] else 0)
    assert payload["leakage_detected"]  # early-exit memcmp leaks everywhere


def test_cli_sweep_rejects_unknown_config():
    from repro.cli import main

    with pytest.raises(SystemExit, match="unknown config"):
        main(["sweep", "ee-mem-cmp", "--configs", "mega,huge"])


def test_cli_analyze_accepts_medium(tmp_path, capsys):
    from repro.cli import main

    code = main(["analyze", "sam-ct", "--inputs", "2", "--config", "medium",
                 "--cache-dir", str(tmp_path / "cache"), "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert payload["config"] == "MediumBoom"
    assert code in (0, 1)


def test_service_accepts_medium_config():
    from repro.service.jobs import JobSpec

    spec = JobSpec.from_dict(
        {"kind": "analyze", "workload": "sam-ct", "config": "medium"})
    assert spec.config == "medium"
    with pytest.raises(ValueError, match="unknown config"):
        JobSpec.from_dict(
            {"kind": "analyze", "workload": "sam-ct", "config": "huge"})
