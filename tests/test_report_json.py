"""JSON serialization tests for leakage reports."""

import json

import pytest

from repro.cli import main
from repro.sampler import MicroSampler
from repro.sampler.report import report_to_dict
from repro.uarch import SMALL_BOOM
from repro.workloads.modexp import make_sam_ct, make_sam_leaky


@pytest.fixture(scope="module")
def leaky_report():
    return MicroSampler(SMALL_BOOM).analyze(make_sam_leaky(n_keys=3, seed=3))


def test_round_trips_through_json(leaky_report):
    payload = report_to_dict(leaky_report)
    decoded = json.loads(json.dumps(payload))
    assert decoded == payload


def test_top_level_fields(leaky_report):
    payload = report_to_dict(leaky_report)
    assert payload["workload"] == "sam-leaky"
    assert payload["config"] == "SmallBoom"
    assert payload["leakage_detected"] is True
    assert payload["n_iterations"] == 96
    assert set(payload["leaky_units"]) <= set(payload["units"])


def test_association_fields(leaky_report):
    payload = report_to_dict(leaky_report)
    unit = payload["units"]["EUU-MUL"]
    association = unit["association"]
    assert 0.0 <= association["cramers_v"] <= 1.0
    assert 0.0 <= association["p_value"] <= 1.0
    assert association["n_observations"] == 96
    assert unit["association_notiming"] is not None


def test_root_cause_serialized(leaky_report):
    payload = report_to_dict(leaky_report)
    unit = payload["units"]["EUU-MUL"]
    assert "root_cause" in unit
    uniques = unit["root_cause"]["unique_values"]
    assert "1" in uniques and uniques["1"]  # the secret-gated mul's PC


def test_clean_report_has_no_root_causes():
    report = MicroSampler(SMALL_BOOM).analyze(make_sam_ct(n_keys=3, seed=3))
    payload = report_to_dict(report)
    assert payload["leakage_detected"] is False
    assert all("root_cause" not in unit for unit in payload["units"].values())


def test_timings_serialized(leaky_report):
    payload = report_to_dict(leaky_report)
    timings = payload["timings_seconds"]
    assert timings["total"] >= timings["stats"]


def test_cli_json_output(capsys):
    code = main(["analyze", "sam-leaky", "--inputs", "2", "--config", "small",
                 "--json"])
    out = capsys.readouterr().out
    payload = json.loads(out)
    assert code == 1
    assert payload["leakage_detected"] is True
