"""Flush+Reload attack-harness tests."""

import pytest

from repro.attacks import flush_reload_attack, lowest_touched_line
from repro.sampler.runner import patch_program
from repro.uarch import MEGA_BOOM
from repro.workloads.cipher import make_sbox_ct, make_sbox_lookup


def _attack(make, n_sets=16):
    workload = make(n_sets=n_sets, n_runs=1, seed=77)
    program = patch_program(workload.assemble(), workload.inputs[0])
    sbox = program.symbols["sbox"]
    monitored = [sbox + 64 * i for i in range(4)]
    return sbox, flush_reload_attack(program, MEGA_BOOM, monitored)


class TestLowestTouchedLine:
    def test_picks_demand_line_under_prefetch(self):
        assert lowest_touched_line({100: False, 164: True, 228: True}) == 164

    def test_none_when_nothing_touched(self):
        assert lowest_touched_line({100: False, 164: False}) is None


class TestFlushReload:
    def test_observations_per_iteration(self):
        _, result = _attack(make_sbox_lookup, n_sets=12)
        assert len(result.observations) == 12
        assert all(len(obs.touched) == 4 for obs in result.observations)

    def test_recovers_lookup_secret_bits(self):
        sbox, result = _attack(make_sbox_lookup)

        def predict(touched):
            line = lowest_touched_line(touched)
            return -1 if line is None else int(line >= sbox + 128)

        assert result.accuracy(predict) == 1.0

    def test_ct_scan_leaks_nothing(self):
        _, result = _attack(make_sbox_ct)
        patterns = {tuple(obs.touched.values())
                    for obs in result.observations}
        assert len(patterns) == 1  # identical observation for every class
        assert all(all(obs.touched.values())
                   for obs in result.observations)  # scan touches all lines

    def test_labels_are_ground_truth(self):
        _, result = _attack(make_sbox_lookup, n_sets=12)
        labels = {obs.label for obs in result.observations}
        assert labels == {0, 1}

    def test_accuracy_empty(self):
        from repro.attacks import FlushReloadResult
        assert FlushReloadResult().accuracy(lambda touched: 0) == 0.0

    def test_probe_is_side_effect_free(self):
        from repro.uarch.config import CacheConfig
        from repro.uarch.memsys import DataCachePort
        port = DataCachePort(
            CacheConfig(sets=4, ways=2, mshrs=2),
            tlb_entries=4, page_size=4096, tlb_miss_latency=0,
            memory_latency=20, lfb_entries=4, prefetcher_enabled=True,
        )
        assert port.probe(0x1000) is False
        assert not port.mshrs and not port.requests_this_cycle
        assert port.cache.stats.misses == 0
        port.warm_line(0x1000)
        lru_before = [list(s) for s in port.cache.sets]
        assert port.probe(0x1000) is True
        assert [list(s) for s in port.cache.sets] == lru_before
