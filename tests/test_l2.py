"""Optional L2 cache tests."""

import pytest

from repro.isa import Interpreter, assemble
from repro.sampler import MicroSampler
from repro.uarch import MEGA_BOOM, Core
from repro.uarch.config import CacheConfig
from repro.uarch.memsys import DataCachePort
from repro.workloads.modexp import make_me_v2_safe
from repro.sampler.runner import patch_program

L2 = CacheConfig(sets=256, ways=8, mshrs=8)
WITH_L2 = MEGA_BOOM.with_(l2=L2, l2_latency=12)


def _port(l2=None):
    return DataCachePort(
        CacheConfig(sets=2, ways=1, mshrs=4),
        tlb_entries=8, page_size=4096, tlb_miss_latency=0,
        memory_latency=30, lfb_entries=4, prefetcher_enabled=False,
        l2_config=l2, l2_latency=12,
    )


class TestL2Port:
    def test_memory_fill_installs_into_both_levels(self):
        port = _port(l2=CacheConfig(sets=16, ways=4))
        port.request(0x1000, cycle=0)
        for cycle in range(1, 40):
            port.begin_cycle()
            port.tick(cycle)
        line = port.cache.line_address(0x1000)
        assert port.cache.contains(line)
        assert port.l2.contains(line)

    def test_l2_hit_fills_faster(self):
        port = _port(l2=CacheConfig(sets=16, ways=4))
        # Warm L2 via a first miss, then evict from the tiny L1.
        port.request(0x0000, cycle=0)
        for cycle in range(1, 40):
            port.begin_cycle()
            port.tick(cycle)
        port.request(0x2000, cycle=40)  # conflicting set: evicts 0x0000 in L1
        for cycle in range(41, 80):
            port.begin_cycle()
            port.tick(cycle)
        assert not port.cache.contains(port.cache.line_address(0x0000))
        port.begin_cycle()
        refill = port.request(0x0000, cycle=100)
        assert not refill.hit
        # L2 hit: ~12 cycles instead of 30.
        assert refill.complete_cycle - 100 < 20

    def test_no_l2_uses_memory_latency(self):
        port = _port(l2=None)
        result = port.request(0x1000, cycle=0)
        assert result.complete_cycle - 0 >= 30


class TestL2Core:
    def test_functional_equivalence_with_l2(self, sum_program):
        interp = Interpreter(sum_program)
        ref = interp.run()
        core = Core(sum_program, WITH_L2)
        result = core.run()
        assert result.exit_code == ref.exit_code
        assert result.stats.committed == ref.steps

    def test_l2_is_off_by_default(self):
        core_default = Core(assemble(".text\nmain:\n li a7,93\n ecall",
                                     entry="main"), MEGA_BOOM)
        assert core_default.dcache.l2 is None

    def test_safe_workload_still_clean_with_l2(self):
        report = MicroSampler(WITH_L2).analyze(make_me_v2_safe(n_keys=4,
                                                               seed=3))
        assert not report.leakage_detected

    def test_workload_functional_with_l2(self):
        workload = make_me_v2_safe(n_keys=1, seed=3)
        program = patch_program(workload.assemble(), workload.inputs[0])
        core = Core(program, WITH_L2)
        assert core.run().exit_code == 0
