"""Concurrent-client stress and fault injection for the campaign service.

Eight async clients hammer one service with overlapping audit campaigns;
every job must complete with a verdict bit-identical to a serial one-shot
``run_audit``, and the overlap must be absorbed by the dedup tiers (trace
cache + in-flight registry) rather than re-simulated.  A second scenario
SIGKILLs a worker mid-stress and requires the same guarantees to hold.

Marked ``slow``: real worker processes, dozens of real campaigns.
"""

from __future__ import annotations

import asyncio
import multiprocessing

import pytest

from repro.sampler.exec_backend import FAULT_TOKEN_ENV
from repro.service import ServiceClient, ServiceServer, submit_and_wait

from tests.test_service import oneshot_analyze, oneshot_audit, strip_volatile

pytestmark = [
    pytest.mark.slow,
    pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="the service worker pool relies on fork"),
]

N_CLIENTS = 8
AUDIT_NAMES = ["sam-ct", "sam-leaky"]
AUDIT_SPEC = {"kind": "audit", "workloads": AUDIT_NAMES,
              "config": "small", "inputs": 2}
#: inputs per audit job: 2 workloads x 2 inputs.
INPUTS_PER_JOB = 4


def run_stress(scenario, **server_kwargs):
    server_kwargs.setdefault("workers", 4)
    server_kwargs.setdefault("max_active", N_CLIENTS)

    async def _main():
        async with ServiceServer(port=0, **server_kwargs) as server:
            return await scenario(server)

    return asyncio.run(_main())


async def _client_session(server, spec):
    """One stress client: its own connection(s), submit + poll to done."""
    client = ServiceClient(server.host, server.port)
    return await submit_and_wait(client, spec, timeout=600)


def test_eight_concurrent_audits_bit_identical_with_dedup():
    async def scenario(server):
        finals = await asyncio.gather(*[
            _client_session(server, dict(AUDIT_SPEC, tenant=f"t{index}"))
            for index in range(N_CLIENTS)
        ])
        stats = server.manager.stats()
        return finals, stats

    finals, stats = run_stress(scenario)
    assert [final["state"] for final in finals] == ["done"] * N_CLIENTS

    # Bit-identical to each other and to the serial one-shot audit.
    expected = strip_volatile(oneshot_audit(AUDIT_NAMES))
    for final in finals:
        assert strip_volatile(final["result"]) == expected

    # The overlap was absorbed by dedup, not brute force: each distinct
    # input simulated exactly once, every other request cache-served.
    simulated = sum(final["stats"]["shards_simulated"] for final in finals)
    served = sum(final["stats"]["shards_cached"]
                 + final["stats"]["shards_deduped"] for final in finals)
    assert simulated == INPUTS_PER_JOB
    assert served == (N_CLIENTS - 1) * INPUTS_PER_JOB
    assert served > 0  # the dedup counter the issue asks for
    assert stats["jobs"]["done"] == N_CLIENTS
    assert stats["pool"]["workers_replaced"] == 0
    assert stats["inflight_keys"] == 0  # registry fully drained


def test_stress_survives_worker_death(tmp_path, monkeypatch):
    token = tmp_path / "fault-token"
    token.write_text("boom")
    monkeypatch.setenv(FAULT_TOKEN_ENV, str(token))

    async def scenario(server):
        finals = await asyncio.gather(*[
            _client_session(server, dict(AUDIT_SPEC, tenant=f"t{index}"))
            for index in range(N_CLIENTS)
        ])
        stats = server.manager.stats()
        return finals, stats

    finals, stats = run_stress(scenario)
    assert [final["state"] for final in finals] == ["done"] * N_CLIENTS
    assert not token.exists(), "a worker should have consumed the token"
    assert stats["pool"]["workers_replaced"] == 1
    assert stats["pool"]["shards_redispatched"] >= 1
    assert stats["pool"]["workers"] == 4  # back to full strength

    expected = strip_volatile(oneshot_audit(AUDIT_NAMES))
    for final in finals:
        assert strip_volatile(final["result"]) == expected


def test_mixed_kind_stress_with_priorities():
    specs = [
        {"kind": "analyze", "workload": "sam-ct", "config": "small",
         "inputs": 2, "priority": index % 3}
        for index in range(4)
    ] + [
        {"kind": "analyze", "workload": "sam-leaky", "config": "small",
         "inputs": 2, "priority": 5},
        {"kind": "audit", "workloads": AUDIT_NAMES, "config": "small",
         "inputs": 2},
        {"kind": "localize", "workload": "sam-leaky", "config": "small",
         "inputs": 2, "permutations": 19},
        {"kind": "analyze", "workload": "sam-ct", "config": "small",
         "inputs": 2},
    ]
    assert len(specs) == N_CLIENTS

    async def scenario(server):
        return await asyncio.gather(*[
            _client_session(server, spec) for spec in specs
        ])

    finals = run_stress(scenario, max_active=4)
    assert [final["state"] for final in finals] == ["done"] * N_CLIENTS

    clean = strip_volatile(oneshot_analyze("sam-ct"))
    leaky = strip_volatile(oneshot_analyze("sam-leaky"))
    for final, spec in zip(finals, specs):
        if spec["kind"] == "analyze":
            expected = leaky if spec["workload"] == "sam-leaky" else clean
            assert strip_volatile(final["result"]) == expected
        elif spec["kind"] == "audit":
            assert final["result"]["passed"] is True
        else:
            assert final["result"]["leakage_localized"] is True
