"""Out-of-order core pipeline tests."""

import pytest

from repro.isa import Interpreter, assemble
from repro.kernel import ProxyKernel
from repro.trace import MicroarchTracer
from repro.uarch import MEGA_BOOM, SMALL_BOOM, Core, SimulationError
from tests.conftest import SUM_PROGRAM_EXIT


def _run(source, config=MEGA_BOOM, tracer=None, max_cycles=200_000):
    program = assemble(source, entry="main")
    core = Core(program, config, tracer=tracer)
    result = core.run(max_cycles=max_cycles)
    return core, result


def test_sum_program_exit(sum_program):
    for config in (MEGA_BOOM, SMALL_BOOM):
        core = Core(sum_program, config)
        assert core.run().exit_code == SUM_PROGRAM_EXIT


def test_ipc_is_sane(sum_program):
    core = Core(sum_program, MEGA_BOOM)
    result = core.run()
    assert 0.05 < result.stats.ipc <= MEGA_BOOM.commit_width


def test_memory_state_matches_interpreter(sum_program):
    interp = Interpreter(sum_program)
    interp.run()
    core = Core(sum_program, MEGA_BOOM)
    core.run()
    out = sum_program.symbols["out"]
    assert core.memory.read_bytes(out, 8) == interp.memory.read_bytes(out, 8)


def test_store_load_forwarding():
    _, result = _run("""
.data
buf: .zero 8
.text
main:
    la t0, buf
    li t1, 0x55
    sd t1, 0(t0)
    ld a0, 0(t0)       # must forward from the in-flight store
    li a7, 93
    ecall
""")
    assert result.exit_code == 0x55


def test_partial_overlap_store_load():
    _, result = _run("""
.data
buf: .dword 0
.text
main:
    la t0, buf
    li t1, 0x1122334455667788
    sd t1, 0(t0)
    lb a0, 2(t0)       # contained byte: forwardable
    li a7, 93
    ecall
""")
    assert result.exit_code == 0x66


def test_store_wider_load_waits_for_drain():
    _, result = _run("""
.data
buf: .dword -1
.text
main:
    la t0, buf
    li t1, 0
    sb t1, 3(t0)
    ld a0, 0(t0)       # overlaps a narrower store: must wait, stay correct
    srli a0, a0, 56
    li a7, 93
    ecall
""")
    assert result.exit_code == 0xFF


def test_mispredicted_branch_recovers():
    _, result = _run("""
.text
main:
    li t0, 0
    li t1, 100
loop:
    addi t0, t0, 1
    blt t0, t1, loop
    mv a0, t0
    li a7, 93
    ecall
""")
    assert result.exit_code == 100


def test_mispredicts_counted(sum_program):
    core = Core(sum_program, MEGA_BOOM)
    result = core.run()
    assert result.stats.mispredicts >= 1
    assert result.stats.squashed_uops >= 1


def test_data_dependent_branch_correct():
    _, result = _run("""
.data
vals: .word 5, -3, 8, -1, 2
.text
main:
    la s0, vals
    li s1, 0
    li s2, 0
loop:
    slli t0, s2, 2
    add t0, t0, s0
    lw t1, 0(t0)
    bltz t1, neg
    add s1, s1, t1
    j next
neg:
    sub s1, s1, t1
next:
    addi s2, s2, 1
    li t2, 5
    blt s2, t2, loop
    mv a0, s1
    li a7, 93
    ecall
""")
    assert result.exit_code == 19


def test_indirect_jump_via_register():
    _, result = _run("""
.data
table: .dword 0
.text
main:
    la t0, f1
    la t1, table
    sd t0, 0(t1)
    ld t2, 0(t1)
    jalr ra, t2, 0
    li a7, 93
    ecall
f1:
    li a0, 77
    ret
""")
    assert result.exit_code == 77


def test_ecall_flush_allows_continuation():
    """A mid-program syscall (console write) must not corrupt state."""
    program = assemble("""
.data
msg: .asciz "ok"
.text
main:
    li s1, 41
    li a7, 64
    li a0, 1
    la a1, msg
    li a2, 2
    ecall
    addi a0, s1, 1
    li a7, 93
    ecall
""", entry="main")
    kernel = ProxyKernel()
    core = Core(program, MEGA_BOOM, kernel=kernel)
    result = core.run()
    assert result.exit_code == 42
    assert result.console == "ok"


def test_markers_reach_tracer():
    tracer = MicroarchTracer(features=["ROB-OCPNCY"])
    _run("""
.text
main:
    roi.begin
    li t0, 1
    iter.begin t0
    nop
    nop
    iter.end
    roi.end
    li a0, 0
    li a7, 93
    ecall
""", tracer=tracer)
    assert len(tracer.iterations) == 1
    assert tracer.iterations[0].label == 1
    assert tracer.iterations[0].cycles >= 1


def test_marker_label_reads_committed_value():
    tracer = MicroarchTracer(features=["ROB-OCPNCY"])
    _run("""
.text
main:
    roi.begin
    li t0, 5
    addi t0, t0, 37
    iter.begin t0
    iter.end
    roi.end
    li a0, 0
    li a7, 93
    ecall
""", tracer=tracer)
    assert tracer.iterations[0].label == 42


def test_fast_bypass_triggers_on_zero_operand():
    source = """
.text
main:
    li t0, 0
    li t1, 123
    nop
    nop
    nop
    nop
    nop
    nop
    and t2, t1, t0     # t0 is 0 and long since ready -> bypassed
    mv a0, t2
    li a7, 93
    ecall
"""
    core, result = _run(source, MEGA_BOOM.with_(fast_bypass=True))
    assert result.exit_code == 0
    assert result.stats.fast_bypasses >= 1


def test_fast_bypass_preserves_results_when_not_zero():
    source = """
.text
main:
    li t0, 0xf0
    li t1, 0xff
    nop
    nop
    and a0, t1, t0
    li a7, 93
    ecall
"""
    core, result = _run(source, MEGA_BOOM.with_(fast_bypass=True))
    assert result.exit_code == 0xF0
    assert result.stats.fast_bypasses == 0


def test_fast_bypass_disabled_by_default():
    source = """
.text
main:
    li t0, 0
    li t1, 123
    nop
    and a0, t1, t0
    li a7, 93
    ecall
"""
    core, result = _run(source, MEGA_BOOM)
    assert result.stats.fast_bypasses == 0
    assert result.exit_code == 0


def test_rob_pcs_reports_folded_entries():
    """With fast bypass, the AND shares the next instruction's ROB entry."""
    source = """
.text
main:
    li t0, 0
    li s1, 7
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    and t2, s1, t0
    xor t3, t2, s1
    mv a0, t3
    li a7, 93
    ecall
"""
    program = assemble(source, entry="main")
    core = Core(program, MEGA_BOOM.with_(fast_bypass=True))
    saw_fold = False
    while not core.halted:
        core.step()
        for uop in core.rob:
            if uop.folded_pcs:
                saw_fold = True
    assert saw_fold
    assert core.kernel.exit_code == 7


def test_wrong_path_loads_do_not_fault():
    """A mispredicted path dereferencing a bogus pointer must be squashed."""
    _, result = _run("""
.data
flag: .dword 1
.text
main:
    la t0, flag
    ld t1, 0(t0)
    li t2, -8          # bogus address used only on the wrong path
    beqz t1, bad
    li a0, 0
    li a7, 93
    ecall
bad:
    ld a0, 0(t2)
    li a7, 93
    ecall
""")
    assert result.exit_code == 0


def test_simulation_error_on_runaway():
    program = assemble(".text\nmain: j main", entry="main")
    core = Core(program, MEGA_BOOM)
    with pytest.raises(SimulationError):
        core.run(max_cycles=2000)


def test_committed_instruction_count(sum_program):
    interp = Interpreter(sum_program)
    steps = interp.run().steps
    core = Core(sum_program, MEGA_BOOM)
    result = core.run()
    assert result.stats.committed == steps


def test_prf_free_list_invariants(sum_program):
    """The free list must never alias live mappings or hold duplicates."""
    core = Core(sum_program, MEGA_BOOM)
    while not core.halted:
        core.step()
        free = core.free_list
        assert len(free) == len(set(free))
        assert not (set(free) & set(core.committed_map))
        assert not (set(free) & set(core.map_table))
        assert 0 not in free  # the zero register is never recycled


def test_small_config_runs_everything(sum_program):
    core = Core(sum_program, SMALL_BOOM)
    result = core.run()
    assert result.exit_code == SUM_PROGRAM_EXIT


def test_variable_div_latency_config(sum_program):
    fixed = Core(sum_program, MEGA_BOOM).run().stats.cycles
    variable = Core(sum_program,
                    MEGA_BOOM.with_(variable_div_latency=True)).run().stats.cycles
    assert fixed > 0 and variable > 0  # both run; timing may differ


def test_stats_fetch_exceeds_commit(sum_program):
    core = Core(sum_program, MEGA_BOOM)
    result = core.run()
    assert result.stats.fetched >= result.stats.committed
