"""Feature-extraction tests: uniqueness and ordering criteria."""

from repro.sampler import extract_root_causes, feature_ordering, feature_uniqueness
from repro.trace.tracer import FeatureIteration, IterationRecord


def _record(index, label, values, order=None):
    order = tuple(order if order is not None else sorted(values))
    data = FeatureIteration(
        snapshot_hash=index,
        snapshot_hash_notiming=index,
        values=frozenset(values),
        order=order,
    )
    return IterationRecord(index=index, label=label, start_cycle=0,
                           end_cycle=10, features={"F": data})


class TestUniqueness:
    def test_values_unique_to_one_class(self):
        records = [
            _record(0, 0, {1, 2, 100}),
            _record(1, 0, {1, 2, 101}),
            _record(2, 1, {1, 2, 200}),
            _record(3, 1, {1, 2, 201}),
        ]
        report = feature_uniqueness(records, "F")
        assert report.unique_values[0] == frozenset({100, 101})
        assert report.unique_values[1] == frozenset({200, 201})
        assert report.common_values == frozenset({1, 2})
        assert report.has_unique_features

    def test_no_uniques_when_classes_identical(self):
        records = [_record(i, i % 2, {5, 6}) for i in range(4)]
        report = feature_uniqueness(records, "F")
        assert not report.has_unique_features
        assert report.common_values == frozenset({5, 6})

    def test_single_class_has_no_uniques(self):
        records = [_record(0, 1, {7})]
        report = feature_uniqueness(records, "F")
        assert report.unique_values[1] == frozenset()

    def test_empty_iterations(self):
        report = feature_uniqueness([], "F")
        assert report.unique_values == {}
        assert not report.has_unique_features

    def test_single_class_many_records(self):
        records = [_record(i, 0, {i}) for i in range(5)]
        report = feature_uniqueness(records, "F")
        assert report.unique_values[0] == frozenset()
        assert not report.has_unique_features
        assert report.common_values == frozenset(range(5))

    def test_value_in_two_of_three_classes_is_neither(self):
        # 9 is shared by classes 0 and 1 only: not unique, not common.
        records = [
            _record(0, 0, {9, 10}),
            _record(1, 1, {9, 11}),
            _record(2, 2, {12}),
        ]
        report = feature_uniqueness(records, "F")
        assert 9 not in report.common_values
        for label in (0, 1, 2):
            assert 9 not in report.unique_values[label]
        assert report.unique_values[0] == frozenset({10})
        assert report.unique_values[1] == frozenset({11})
        assert report.unique_values[2] == frozenset({12})

    def test_permuted_orderings_do_not_create_uniques(self):
        records = [
            _record(0, 0, {10, 20}, order=(10, 20)),
            _record(1, 1, {10, 20}, order=(20, 10)),
        ]
        report = feature_uniqueness(records, "F")
        assert not report.has_unique_features
        assert report.common_values == frozenset({10, 20})


class TestOrdering:
    def test_class_exclusive_orderings_detected(self):
        # Same value sets, consistently different first-occurrence order.
        records = [
            _record(0, 0, {10, 20}, order=(10, 20)),
            _record(1, 0, {10, 20}, order=(10, 20)),
            _record(2, 1, {10, 20}, order=(20, 10)),
            _record(3, 1, {10, 20}, order=(20, 10)),
        ]
        report = feature_ordering(records, "F")
        assert report.has_ordering_mismatch
        assert report.exclusive_orderings[0][(10, 20)] == 2
        assert report.exclusive_orderings[1][(20, 10)] == 2

    def test_shared_orderings_not_reported(self):
        records = [
            _record(0, 0, {10, 20}, order=(10, 20)),
            _record(1, 1, {10, 20}, order=(10, 20)),
        ]
        report = feature_ordering(records, "F")
        assert not report.has_ordering_mismatch

    def test_ordering_restricted_to_common_values(self):
        # Unique values must not masquerade as ordering differences.
        records = [
            _record(0, 0, {1, 2, 100}, order=(100, 1, 2)),
            _record(1, 1, {1, 2, 200}, order=(200, 1, 2)),
        ]
        report = feature_ordering(records, "F")
        # restricted orderings are both (1, 2): identical across classes.
        assert not report.has_ordering_mismatch

    def test_empty_iterations(self):
        report = feature_ordering([], "F")
        assert report.exclusive_orderings == {}
        assert not report.has_ordering_mismatch

    def test_single_class_has_no_exclusive_orderings(self):
        # Exclusivity is a between-class notion: one class alone must not
        # report its own orderings as class-exclusive.
        records = [
            _record(0, 1, {10, 20}, order=(10, 20)),
            _record(1, 1, {10, 20}, order=(20, 10)),
        ]
        report = feature_ordering(records, "F")
        assert report.exclusive_orderings[1] == {}
        assert not report.has_ordering_mismatch

    def test_permuted_orderings_shared_by_both_classes(self):
        # Both permutations of the same value set appear in both classes:
        # nothing is exclusive, whatever the per-class mixture.
        records = [
            _record(0, 0, {10, 20}, order=(10, 20)),
            _record(1, 0, {10, 20}, order=(20, 10)),
            _record(2, 1, {10, 20}, order=(10, 20)),
            _record(3, 1, {10, 20}, order=(20, 10)),
            _record(4, 1, {10, 20}, order=(20, 10)),
        ]
        report = feature_ordering(records, "F")
        assert not report.has_ordering_mismatch

    def test_one_shared_one_exclusive_permutation(self):
        # (10, 20) occurs in both classes; (20, 10) only in class 1.
        records = [
            _record(0, 0, {10, 20}, order=(10, 20)),
            _record(1, 1, {10, 20}, order=(10, 20)),
            _record(2, 1, {10, 20}, order=(20, 10)),
        ]
        report = feature_ordering(records, "F")
        assert report.has_ordering_mismatch
        assert report.exclusive_orderings[0] == {}
        assert report.exclusive_orderings[1] == {(20, 10): 1}

    def test_three_classes_pairwise_exclusive(self):
        records = [
            _record(0, 0, {1, 2, 3}, order=(1, 2, 3)),
            _record(1, 1, {1, 2, 3}, order=(2, 1, 3)),
            _record(2, 2, {1, 2, 3}, order=(3, 2, 1)),
        ]
        report = feature_ordering(records, "F")
        assert report.exclusive_orderings[0][(1, 2, 3)] == 1
        assert report.exclusive_orderings[1][(2, 1, 3)] == 1
        assert report.exclusive_orderings[2][(3, 2, 1)] == 1

    def test_empty_restricted_ordering_can_be_shared(self):
        # Disjoint value sets leave no common values; every iteration's
        # restricted ordering is the empty tuple, shared by both classes.
        records = [
            _record(0, 0, {100}, order=(100,)),
            _record(1, 1, {200}, order=(200,)),
        ]
        report = feature_ordering(records, "F")
        assert not report.has_ordering_mismatch


class TestRootCauseReport:
    def test_summary_mentions_unique_values(self):
        records = [
            _record(0, 0, {0x1000}),
            _record(1, 1, {0x2000}),
        ]
        report = extract_root_causes(records, "F")
        text = report.summary()
        assert "0x1000" in text and "0x2000" in text

    def test_summary_for_clean_feature(self):
        records = [_record(i, i % 2, {3}) for i in range(4)]
        text = extract_root_causes(records, "F").summary()
        assert "no unique features" in text
