"""Feature-extraction tests: uniqueness and ordering criteria."""

from repro.sampler import extract_root_causes, feature_ordering, feature_uniqueness
from repro.trace.tracer import FeatureIteration, IterationRecord


def _record(index, label, values, order=None):
    order = tuple(order if order is not None else sorted(values))
    data = FeatureIteration(
        snapshot_hash=index,
        snapshot_hash_notiming=index,
        values=frozenset(values),
        order=order,
    )
    return IterationRecord(index=index, label=label, start_cycle=0,
                           end_cycle=10, features={"F": data})


class TestUniqueness:
    def test_values_unique_to_one_class(self):
        records = [
            _record(0, 0, {1, 2, 100}),
            _record(1, 0, {1, 2, 101}),
            _record(2, 1, {1, 2, 200}),
            _record(3, 1, {1, 2, 201}),
        ]
        report = feature_uniqueness(records, "F")
        assert report.unique_values[0] == frozenset({100, 101})
        assert report.unique_values[1] == frozenset({200, 201})
        assert report.common_values == frozenset({1, 2})
        assert report.has_unique_features

    def test_no_uniques_when_classes_identical(self):
        records = [_record(i, i % 2, {5, 6}) for i in range(4)]
        report = feature_uniqueness(records, "F")
        assert not report.has_unique_features
        assert report.common_values == frozenset({5, 6})

    def test_single_class_has_no_uniques(self):
        records = [_record(0, 1, {7})]
        report = feature_uniqueness(records, "F")
        assert report.unique_values[1] == frozenset()

    def test_empty_iterations(self):
        report = feature_uniqueness([], "F")
        assert report.unique_values == {}
        assert not report.has_unique_features


class TestOrdering:
    def test_class_exclusive_orderings_detected(self):
        # Same value sets, consistently different first-occurrence order.
        records = [
            _record(0, 0, {10, 20}, order=(10, 20)),
            _record(1, 0, {10, 20}, order=(10, 20)),
            _record(2, 1, {10, 20}, order=(20, 10)),
            _record(3, 1, {10, 20}, order=(20, 10)),
        ]
        report = feature_ordering(records, "F")
        assert report.has_ordering_mismatch
        assert report.exclusive_orderings[0][(10, 20)] == 2
        assert report.exclusive_orderings[1][(20, 10)] == 2

    def test_shared_orderings_not_reported(self):
        records = [
            _record(0, 0, {10, 20}, order=(10, 20)),
            _record(1, 1, {10, 20}, order=(10, 20)),
        ]
        report = feature_ordering(records, "F")
        assert not report.has_ordering_mismatch

    def test_ordering_restricted_to_common_values(self):
        # Unique values must not masquerade as ordering differences.
        records = [
            _record(0, 0, {1, 2, 100}, order=(100, 1, 2)),
            _record(1, 1, {1, 2, 200}, order=(200, 1, 2)),
        ]
        report = feature_ordering(records, "F")
        # restricted orderings are both (1, 2): identical across classes.
        assert not report.has_ordering_mismatch


class TestRootCauseReport:
    def test_summary_mentions_unique_values(self):
        records = [
            _record(0, 0, {0x1000}),
            _record(1, 1, {0x2000}),
        ]
        report = extract_root_causes(records, "F")
        text = report.summary()
        assert "0x1000" in text and "0x2000" in text

    def test_summary_for_clean_feature(self):
        records = [_record(i, i % 2, {3}) for i in range(4)]
        text = extract_root_causes(records, "F").summary()
        assert "no unique features" in text
