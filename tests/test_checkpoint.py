"""Fast-forward checkpointing: cosimulation, bit-identity and cache tests.

Three layers of guarantees:

* **Cosimulation** — the functional interpreter's architectural state at
  ``roi.begin`` (registers, dirtied memory, kernel state) matches the
  cycle-accurate core's committed state at the same program point, for
  every bundled workload.  This is what makes a checkpoint a legal
  substitute for simulating the prologue.
* **Bit-identity** — at the default warm-up budget (which covers every
  bundled workload's prologue) and at ``--warmup-insts full``, campaigns,
  reports and localization dicts are byte-for-byte identical to full
  simulation, with or without the checkpoint store.
* **Cache plumbing** — checkpoint keys react to exactly the inputs that
  change the checkpoint, the store round-trips and shrugs off corruption,
  and the trace-cache key covers the warm-up budget.
"""

from __future__ import annotations

import pickle

import pytest

from repro.kernel import ProxyKernel
from repro.sampler.checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    DEFAULT_WARMUP_INSTS,
    Checkpoint,
    CheckpointStore,
    capture_checkpoint,
    checkpoint_key,
    describe_warmup,
    load_or_capture,
    parse_warmup,
)
from repro.sampler.pipeline import MicroSampler
from repro.sampler.runner import patch_program, run_campaign
from repro.sampler.trace_cache import TraceCache, cache_stats, prune_cache
from repro.trace import MicroarchTracer
from repro.uarch import SMALL_BOOM, Core
from repro.workloads.bignum import make_mp_modexp_ct
from repro.workloads.bootstrap import inject_bootstrap, with_bootstrap
from repro.workloads.chacha import make_chacha20
from repro.workloads.cipher import make_sbox_ct, make_sbox_lookup
from repro.workloads.memcmp import (
    make_ct_memcmp,
    make_ct_memcmp_safe,
    make_early_exit_memcmp,
)
from repro.workloads.modexp import (
    make_me_v2_safe,
    make_sam_ct,
    make_sam_leaky,
)
from repro.workloads.openssl import make_primitive_workload
from repro.workloads.spectre import make_spectre_v1

ROI_WORKLOADS = [
    make_sam_leaky(n_keys=1),
    make_sam_ct(n_keys=1),
    make_me_v2_safe(n_keys=1),
    make_ct_memcmp(n_pairs=2, n_runs=1),
    make_early_exit_memcmp(n_pairs=2, n_runs=1),
    make_ct_memcmp_safe(n_pairs=2, n_runs=1),
    make_sbox_lookup(n_sets=2, n_runs=1),
    make_sbox_ct(n_sets=2, n_runs=1),
    make_spectre_v1(n_iters=2, n_runs=1),
    make_chacha20(n_keys=1, n_blocks=1),
    make_mp_modexp_ct(n_keys=1),
    make_primitive_workload("constant_time_eq", n_sets=2, n_runs=1),
    with_bootstrap(make_sam_ct(n_keys=1), insts=500),
]

ROI_IDS = [workload.name for workload in ROI_WORKLOADS]


# --------------------------------------------------------- cosimulation


def _core_state_at_roi(program):
    """Simulate cycle-accurately until ``roi.begin`` commits; return the
    core plus the committed (pc, regs) captured at that commit."""
    core = Core(program, SMALL_BOOM, kernel=ProxyKernel(),
                tracer=MicroarchTracer())
    captured = {}

    def listener(pc, mnemonic, rd, value, cycle):
        if mnemonic == "roi.begin" and not captured:
            captured["pc"] = pc
            captured["regs"] = tuple(core.arch.read_reg(i)
                                     for i in range(32))

    core.commit_listener = listener
    while not core.halted and not captured:
        core.step()
        assert core.cycle < 2_000_000, "roi.begin never committed"
    return core, captured


@pytest.mark.parametrize("workload", ROI_WORKLOADS, ids=ROI_IDS)
def test_checkpoint_matches_core_at_roi_begin(workload):
    """Interpreter checkpoint == core architectural state at roi.begin."""
    program = patch_program(workload.assemble(), workload.inputs[0])
    checkpoint = capture_checkpoint(program, warmup_insts=0)
    assert checkpoint is not None
    assert checkpoint.steps == checkpoint.pre_roi_steps

    core, committed = _core_state_at_roi(program)
    assert committed["pc"] == checkpoint.pc
    assert committed["regs"] == checkpoint.regs
    # Every page the functional prologue dirtied reads back identically
    # from the core's memory at the same commit point (the marker is
    # serializing, so all pre-ROI stores have drained).
    for page_base, payload in checkpoint.pages:
        assert core.memory.read_bytes(page_base, len(payload)) == payload
    assert bytes(core.kernel.console) == checkpoint.console
    assert core.kernel.checkpoint_state() == (checkpoint.console,
                                              checkpoint.brk)


def test_capture_returns_none_without_roi_marker(sum_program):
    assert capture_checkpoint(sum_program, warmup_insts=0) is None


def test_capture_returns_none_when_budget_too_small():
    workload = make_sam_ct(n_keys=1)
    program = patch_program(workload.assemble(), workload.inputs[0])
    assert capture_checkpoint(program, warmup_insts=0, max_steps=2) is None


def test_full_warmup_budget_degenerates_to_step_zero():
    workload = make_sam_ct(n_keys=1)
    program = patch_program(workload.assemble(), workload.inputs[0])
    checkpoint = capture_checkpoint(program,
                                    warmup_insts=DEFAULT_WARMUP_INSTS)
    assert checkpoint is not None
    assert checkpoint.steps == 0
    assert checkpoint.pre_roi_steps > 0


def test_partial_warmup_budget_stops_short_of_roi():
    workload = with_bootstrap(make_sam_ct(n_keys=1), insts=500)
    program = patch_program(workload.assemble(), workload.inputs[0])
    checkpoint = capture_checkpoint(program, warmup_insts=16)
    assert checkpoint is not None
    assert checkpoint.steps == checkpoint.pre_roi_steps - 16
    assert checkpoint.steps > 0


# --------------------------------------------------------- bit-identity


def _campaign_signature(campaign):
    """Everything observable about a campaign except wall-clock noise."""
    return [
        (
            record.run_index,
            record.label,
            tuple(
                (fid, feature.snapshot_hash, feature.snapshot_hash_notiming)
                for fid, feature in sorted(record.features.items())
            ),
        )
        for record in campaign.iterations
    ]


def _scrub_timings(value):
    """Recursively drop wall-clock keys from a report/localization dict."""
    if isinstance(value, dict):
        return {
            key: _scrub_timings(item)
            for key, item in value.items()
            if key not in ("timings_seconds", "timings", "profile")
        }
    if isinstance(value, list):
        return [_scrub_timings(item) for item in value]
    return value


DIFFERENTIAL_WORKLOADS = [
    make_chacha20(n_keys=2, n_blocks=1),
    make_early_exit_memcmp(n_pairs=2, n_runs=2),
    make_me_v2_safe(n_keys=2),
]


@pytest.mark.parametrize("workload", DIFFERENTIAL_WORKLOADS,
                         ids=[w.name for w in DIFFERENTIAL_WORKLOADS])
def test_default_warmup_is_bit_identical_to_full(workload, tmp_path):
    """Traces and reports match full simulation at the default budget."""
    from repro.sampler.report import report_to_dict

    full = run_campaign(workload, SMALL_BOOM, warmup_insts=None)
    ckpt = run_campaign(workload, SMALL_BOOM,
                        warmup_insts=DEFAULT_WARMUP_INSTS,
                        checkpoint_dir=str(tmp_path / "ckpt"))
    assert _campaign_signature(full) == _campaign_signature(ckpt)
    assert ckpt.ff_steps_total == 0  # default budget covers the prologue

    reports = {}
    for tag, warmup in (("full", None), ("ckpt", DEFAULT_WARMUP_INSTS)):
        sampler = MicroSampler(SMALL_BOOM, warmup_insts=warmup)
        reports[tag] = _scrub_timings(
            report_to_dict(sampler.analyze(workload)))
    assert reports["full"] == reports["ckpt"]


def test_localization_dict_bit_identical_under_default_warmup():
    from repro.localize.annotate import localization_to_dict

    workload = make_early_exit_memcmp(n_pairs=2, n_runs=2)
    dicts = {}
    for tag, warmup in (("full", None), ("ckpt", DEFAULT_WARMUP_INSTS)):
        sampler = MicroSampler(SMALL_BOOM, features=("ROB-PC",),
                               warmup_insts=warmup)
        dicts[tag] = _scrub_timings(
            localization_to_dict(sampler.localize(workload)))
    assert dicts["full"] == dicts["ckpt"]


def test_restored_run_matches_cold_capture(tmp_path):
    """Cold capture vs checkpoint-store replay: identical campaigns."""
    workload = with_bootstrap(make_sam_ct(n_keys=2), insts=2_000)
    checkpoint_dir = tmp_path / "ckpt"
    cold = run_campaign(workload, SMALL_BOOM, warmup_insts=64,
                        checkpoint_dir=str(checkpoint_dir))
    assert cold.ff_steps_total > 0  # the restore path actually ran
    assert list(checkpoint_dir.rglob("*.ckpt"))
    warm = run_campaign(workload, SMALL_BOOM, warmup_insts=64,
                        checkpoint_dir=str(checkpoint_dir))
    assert _campaign_signature(cold) == _campaign_signature(warm)


def test_bootstrap_variant_verdict_matches_full():
    """Fast-forwarding a bootstrap-heavy program must not flip verdicts."""
    workload = with_bootstrap(make_sam_ct(n_keys=2), insts=2_000)
    verdicts = {}
    for tag, warmup in (("full", None), ("ckpt", 64)):
        report = MicroSampler(SMALL_BOOM, warmup_insts=warmup).analyze(
            workload)
        verdicts[tag] = (report.leakage_detected, sorted(report.leaky_units))
    assert verdicts["full"] == verdicts["ckpt"]


def test_audit_verdicts_unchanged_at_default_warmup():
    """The audit path (litmus + hardened pair) agrees with expectations
    when checkpointing is on — verdicts are unchanged vs full simulation
    because the default budget degenerates to the full-simulation path."""
    from repro.sampler import run_audit

    workloads = [make_sam_leaky(n_keys=3, seed=3),
                 make_sam_ct(n_keys=3, seed=3)]
    result = run_audit(workloads, config=SMALL_BOOM,
                       warmup_insts=DEFAULT_WARMUP_INSTS,
                       expectations={"sam-leaky": True, "sam-ct": False})
    assert result.passed


def test_bootstrap_injection_preserves_architectural_results():
    """The scrub loop leaves the state reaching roi.begin unchanged,
    except for the t-registers it is allowed to clobber (dead at entry and
    re-initialised by every workload before use)."""
    base = make_sam_ct(n_keys=1)
    boosted = with_bootstrap(base, insts=500)
    base_ckpt = capture_checkpoint(
        patch_program(base.assemble(), base.inputs[0]), warmup_insts=0)
    boost_ckpt = capture_checkpoint(
        patch_program(boosted.assemble(), boosted.inputs[0]),
        warmup_insts=0)
    t_regs = {5, 6, 7, 28, 29, 30, 31}
    for reg in range(32):
        if reg not in t_regs:
            assert base_ckpt.regs[reg] == boost_ckpt.regs[reg], f"x{reg}"
    assert boost_ckpt.pre_roi_steps > base_ckpt.pre_roi_steps + 500


def test_inject_bootstrap_rejects_bad_input():
    with pytest.raises(ValueError):
        inject_bootstrap(".text\nstart:\n    ret\n", insts=100)  # no main
    source = ".text\nmain:\n    ret\n"
    doubled = inject_bootstrap(source, insts=100)
    with pytest.raises(ValueError):
        inject_bootstrap(doubled, insts=100)
    with pytest.raises(ValueError):
        inject_bootstrap(source, insts=1)


# ------------------------------------------------------- keys and store


def test_parse_and_describe_warmup():
    assert parse_warmup("full") is None
    assert parse_warmup("none") == 0
    assert parse_warmup("512") == 512
    with pytest.raises(ValueError):
        parse_warmup("-3")
    with pytest.raises(ValueError):
        parse_warmup("many")
    assert describe_warmup(None) == "full"
    assert describe_warmup(0) == "none"
    assert describe_warmup(64) == "64 insts"


def test_checkpoint_key_sensitivity():
    workload = make_sam_ct(n_keys=2)
    program_a = patch_program(workload.assemble(), workload.inputs[0])
    program_b = patch_program(workload.assemble(), workload.inputs[1])
    key = checkpoint_key(program_a, None, 64)
    assert key == checkpoint_key(program_a, None, 64)
    assert key != checkpoint_key(program_a, None, 65)
    assert key != checkpoint_key(program_b, None, 64)


def test_store_round_trip_and_corruption(tmp_path):
    store = CheckpointStore(tmp_path / "ckpt")
    checkpoint = Checkpoint(pc=0x1000, regs=tuple(range(32)),
                            pages=((0x2000, b"\x01" * 64),),
                            console=b"hi", brk=0x3000, steps=7,
                            pre_roi_steps=9)
    assert store.load("ab" * 8) is None
    assert store.misses == 1
    assert store.store("ab" * 8, checkpoint)
    loaded = store.load("ab" * 8)
    assert loaded == checkpoint
    assert store.hits == 1

    # Corruption and version mismatch degrade to a miss, never an error.
    path = store._path("ab" * 8)
    path.write_bytes(b"not a pickle")
    assert store.load("ab" * 8) is None
    path.write_bytes(pickle.dumps((CHECKPOINT_FORMAT_VERSION + 1,) * 8))
    assert store.load("ab" * 8) is None


def test_load_or_capture_persists_and_replays(tmp_path):
    workload = make_sam_ct(n_keys=1)
    program = patch_program(workload.assemble(), workload.inputs[0])
    store = CheckpointStore(tmp_path / "ckpt")
    first = load_or_capture(program, warmup_insts=0, store=store)
    assert first is not None and store.stores == 1
    second = load_or_capture(program, warmup_insts=0, store=store)
    assert second == first
    assert store.hits == 1


def test_trace_cache_key_covers_warmup_budget():
    from repro.sampler.exec_backend import RunTask
    from repro.sampler.trace_cache import task_key

    workload = make_sam_ct(n_keys=1)
    program = patch_program(workload.assemble(), workload.inputs[0])

    def key(**overrides):
        return task_key(RunTask(run_index=0, workload_name=workload.name,
                                program=program, config=SMALL_BOOM,
                                **overrides))

    assert key(warmup_insts=None) != key(warmup_insts=DEFAULT_WARMUP_INSTS)
    assert key(warmup_insts=64) != key(warmup_insts=65)
    # Storage location and observability knobs do not change content.
    assert key(warmup_insts=64) == key(warmup_insts=64,
                                       checkpoint_dir="/somewhere",
                                       profile=True)


# ----------------------------------------------- lockstep batch capture


_DIVERGENT_PROLOGUE = """
.data
key: .byte 0
.text
main:
    la   t0, key
    lbu  t1, 0(t0)
    beqz t1, skip
    addi t2, t1, 1
skip:
    roi.begin
    li   t3, 1
    iter.begin t3
    addi t4, t3, 1
    iter.end
    roi.end
    li   a0, 0
    li   a7, 93
    ecall
"""


@pytest.mark.parametrize("workload", ROI_WORKLOADS, ids=ROI_IDS)
def test_batch_capture_matches_scalar_capture(workload):
    """One lockstep pass captures exactly what N scalar captures would."""
    from repro.sampler.checkpoint import capture_checkpoints_batch

    program = workload.assemble()
    inputs = (workload.inputs * 3)[:3]
    programs = [patch_program(program, patches) for patches in inputs]
    for warmup in (0, 16):
        captured, divergences = capture_checkpoints_batch(
            programs, warmup_insts=warmup)
        assert divergences == []  # these prologues are input-independent
        for prog, checkpoint in zip(programs, captured):
            assert checkpoint == capture_checkpoint(prog,
                                                    warmup_insts=warmup)


def test_batch_capture_matches_scalar_with_distinct_inputs():
    from repro.sampler.checkpoint import capture_checkpoints_batch

    for workload in (make_sam_ct(n_keys=4),
                     make_chacha20(n_keys=3, n_blocks=1),
                     with_bootstrap(make_sam_ct(n_keys=4), insts=500)):
        program = workload.assemble()
        programs = [patch_program(program, patches)
                    for patches in workload.inputs]
        captured, divergences = capture_checkpoints_batch(programs,
                                                          warmup_insts=0)
        assert divergences == [], workload.name
        for prog, checkpoint in zip(programs, captured):
            assert checkpoint == capture_checkpoint(prog, warmup_insts=0)


def test_batch_capture_survives_divergent_prologue():
    """Split lanes fall back to scalar capture; checkpoints stay correct."""
    from repro.isa import assemble
    from repro.sampler.checkpoint import capture_checkpoints_batch

    program = assemble(_DIVERGENT_PROLOGUE, entry="main")
    programs = [patch_program(program, {"key": bytes([k])})
                for k in (0, 1, 0, 1)]
    captured, divergences = capture_checkpoints_batch(programs,
                                                      warmup_insts=0)
    assert [event.kind for event in divergences] == ["branch"]
    assert divergences[0].lanes == (1, 3)
    for prog, checkpoint in zip(programs, captured):
        assert checkpoint == capture_checkpoint(prog, warmup_insts=0)


def test_batch_capture_returns_none_without_roi_marker(sum_program):
    from repro.sampler.checkpoint import capture_checkpoints_batch

    captured, divergences = capture_checkpoints_batch(
        [sum_program, sum_program], warmup_insts=0)
    assert captured == (None, None) or list(captured) == [None, None]
    assert divergences == []


def test_checkpoint_key_covers_batch_lanes():
    """Scalar and batched captures never share a store entry."""
    workload = make_sam_ct(n_keys=1)
    program = patch_program(workload.assemble(), workload.inputs[0])
    scalar = checkpoint_key(program, None, 64)
    assert scalar == checkpoint_key(program, None, 64, batch_lanes=None)
    batched = checkpoint_key(program, None, 64, batch_lanes=8)
    assert batched != scalar
    assert batched != checkpoint_key(program, None, 64, batch_lanes=16)


def test_attach_batch_checkpoints_reuses_the_store(tmp_path, monkeypatch):
    from repro.sampler import attach_batch_checkpoints
    from repro.sampler.exec_backend import RunTask

    workload = with_bootstrap(make_sam_ct(n_keys=4), insts=500)
    program = workload.assemble()
    checkpoint_dir = str(tmp_path / "ckpt")

    def build_tasks():
        return [RunTask(run_index=index, workload_name=workload.name,
                        program=patch_program(program, patches),
                        config=SMALL_BOOM, warmup_insts=64,
                        checkpoint_dir=checkpoint_dir)
                for index, patches in enumerate(workload.inputs)]

    tasks = build_tasks()
    divergences = attach_batch_checkpoints(tasks, list(range(4)), lanes=4,
                                           warmup_insts=64,
                                           checkpoint_dir=checkpoint_dir)
    assert divergences == []
    assert all(task.batch_lanes == 4 and task.checkpoint is not None
               for task in tasks)

    # A second campaign over the same inputs must be served entirely from
    # the store — no re-capture.
    import repro.sampler.checkpoint as checkpoint_module

    def refuse_capture(*args, **kwargs):
        raise AssertionError("expected a checkpoint-store hit, got a capture")

    monkeypatch.setattr(checkpoint_module, "capture_checkpoints_batch",
                        refuse_capture)
    fresh = build_tasks()
    attach_batch_checkpoints(fresh, list(range(4)), lanes=4,
                             warmup_insts=64, checkpoint_dir=checkpoint_dir)
    assert [task.checkpoint for task in fresh] == \
        [task.checkpoint for task in tasks]


# ------------------------------------------------------ dirty tracking


def test_tracking_memory_records_dirty_pages():
    from repro.isa.interpreter import TrackingMemory

    memory = TrackingMemory(1 << 16, page_size=4096)
    assert memory.dirty_pages == set()
    memory.store(4096 + 8, 8, 0xAA)
    assert memory.dirty_pages == {4096}
    memory.store(2 * 4096 - 4, 8, 0xBB)  # straddles a page boundary
    assert memory.dirty_pages == {4096, 2 * 4096}
    memory.write_bytes(3 * 4096, b"\x01" * (2 * 4096))
    assert memory.dirty_pages == {4096, 2 * 4096, 3 * 4096, 4 * 4096}


def test_interpreter_data_image_is_not_dirty():
    from repro.isa.interpreter import Interpreter

    workload = make_sam_ct(n_keys=1)
    program = patch_program(workload.assemble(), workload.inputs[0])
    interp = Interpreter(program, track_dirty_pages=True)
    assert interp.memory.dirty_pages == set()
    interp.run_until(5)
    assert interp.steps == 5


# --------------------------------------------------- cache maintenance


def _plant_stale_entries(root):
    trace = root / "ab" / "stale.pkl"
    trace.parent.mkdir(parents=True, exist_ok=True)
    trace.write_bytes(pickle.dumps((1, [], None, 0, 0.0)))  # old version
    ckpt = root / "checkpoints" / "cd" / "stale.ckpt"
    ckpt.parent.mkdir(parents=True, exist_ok=True)
    ckpt.write_bytes(b"garbage")
    return trace, ckpt


def test_cache_stats_and_prune(tmp_path):
    root = tmp_path / "cache"
    workload = make_sam_ct(n_keys=1)
    run_campaign(workload, SMALL_BOOM, cache=TraceCache(root),
                 warmup_insts=DEFAULT_WARMUP_INSTS)
    trace, ckpt = _plant_stale_entries(root)

    stats = cache_stats(root)
    assert stats["trace"]["entries"] >= 2
    assert stats["trace"]["stale_entries"] == 1
    assert stats["checkpoint"]["stale_entries"] == 1

    removed = prune_cache(root)
    assert removed["removed_entries"] == 2
    assert not trace.exists() and not ckpt.exists()
    # Fresh entries survive a stale-only prune...
    assert cache_stats(root)["trace"]["entries"] >= 1
    # ...and a full prune clears everything.
    prune_cache(root, all_entries=True)
    stats = cache_stats(root)
    assert stats["trace"]["entries"] == 0
    assert stats["checkpoint"]["entries"] == 0


def test_cache_cli_stats_and_prune(tmp_path, capsys):
    from repro.cli import main

    root = tmp_path / "cache"
    _plant_stale_entries(root)
    assert main(["cache", "stats", "--cache-dir", str(root)]) == 0
    out = capsys.readouterr().out
    assert "trace" in out and "checkpoint" in out
    assert "1 stale" in out and "cache prune" in out

    assert main(["cache", "prune", "--cache-dir", str(root)]) == 0
    out = capsys.readouterr().out
    assert "pruned 2 entries" in out
    assert main(["cache", "stats", "--cache-dir", str(root)]) == 0
    assert "0 stale" in capsys.readouterr().out


# ----------------------------------------------------------- CLI flags


def test_analyze_cli_accepts_warmup_insts(capsys):
    from repro.cli import main

    code = main(["analyze", "sam-ct", "--inputs", "2", "--config", "small",
                 "--no-cache", "--warmup-insts", "none"])
    assert code == 0
    code = main(["analyze", "sam-ct", "--inputs", "2", "--config", "small",
                 "--no-cache", "--warmup-insts", "full"])
    assert code == 0


def test_localize_cli_profile_flag(capsys):
    from repro.cli import main

    code = main(["localize", "ct-mem-cmp-safe", "--inputs", "2",
                 "--features", "ROB-PC", "--no-cache", "--profile"])
    assert code == 0
    out = capsys.readouterr().out
    assert "Per-stage simulator time" in out


def test_localize_profile_lands_in_json():
    from repro.localize.annotate import localization_to_dict

    workload = make_ct_memcmp_safe(n_pairs=2, n_runs=1)
    sampler = MicroSampler(SMALL_BOOM, features=("ROB-PC",), profile=True)
    result = localization_to_dict(sampler.localize(workload))
    assert result["profile"] is not None
    assert result["profile"]["cycles"] > 0
    assert result["profile"]["total_seconds"] > 0
