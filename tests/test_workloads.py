"""Workload functional tests against Python references."""

import struct

import pytest

from repro.isa import Interpreter
from repro.sampler.runner import patch_program
from repro.workloads.keygen import balanced_keys, memcmp_input_pairs, random_keys
from repro.workloads.memcmp import make_ct_memcmp
from repro.workloads.modexp import (
    DEFAULT_BASE,
    DEFAULT_MODULUS,
    expected_results,
    make_me_v1_cv,
    make_me_v1_mv,
    make_me_v2_safe,
    make_sam_ct,
    make_sam_leaky,
    modexp_reference,
)
from repro.workloads.openssl import (
    PRIMITIVES,
    expected_primitive_results,
    make_primitive_workload,
    primitive_names,
)


class TestKeygen:
    def test_random_keys_deterministic(self):
        assert random_keys(4, seed=1) == random_keys(4, seed=1)
        assert random_keys(4, seed=1) != random_keys(4, seed=2)

    def test_balanced_keys_bit_mix(self):
        for key in balanced_keys(16, 4, seed=3):
            ones = bin(int.from_bytes(key, "little")).count("1")
            assert 8 <= ones <= 24

    def test_memcmp_pairs_have_both_classes(self):
        pairs = memcmp_input_pairs(16, 32, seed=4)
        equal = sum(1 for a, b in pairs if a == b)
        assert 0 < equal < 16
        assert all(len(a) == len(b) == 32 for a, b in pairs)

    def test_memcmp_unequal_pairs_differ(self):
        for a, b in memcmp_input_pairs(8, 16, seed=5):
            if a != b:
                assert any(x != y for x, y in zip(a, b))


MODEXP_MAKERS = [make_sam_leaky, make_sam_ct, make_me_v1_cv,
                 make_me_v1_mv, make_me_v2_safe]


class TestModexpWorkloads:
    def test_reference_matches_pow(self):
        assert modexp_reference(3, (5).to_bytes(4, "little"), 100) == 43

    @pytest.mark.parametrize("make", MODEXP_MAKERS,
                             ids=lambda m: m.__name__)
    def test_functional_correctness(self, make):
        workload = make(n_keys=2, seed=17)
        program = workload.assemble()
        for patches, expected in zip(workload.inputs,
                                     expected_results(workload)):
            patched = patch_program(program, patches)
            interp = Interpreter(patched)
            result = interp.run()
            assert result.exit_code == 0
            got = int.from_bytes(
                interp.memory.read_bytes(patched.symbols["result"], 8),
                "little")
            assert got == expected

    @pytest.mark.parametrize("make", MODEXP_MAKERS,
                             ids=lambda m: m.__name__)
    def test_labels_are_key_bits_msb_first(self, make):
        workload = make(n_keys=1, seed=23)
        program = workload.assemble()
        patched = patch_program(program, workload.inputs[0])
        result = Interpreter(patched).run()
        labels = [m.label for m in result.markers if m.mnemonic == "iter.begin"]
        key = int.from_bytes(workload.inputs[0]["key"], "little")
        assert labels == [(key >> b) & 1 for b in range(31, -1, -1)]

    def test_dst_and_dummy_on_distinct_pages(self):
        program = make_me_v1_mv(n_keys=1).assemble()
        dst = program.symbols["dst_buf"]
        dummy = program.symbols["dummy_buf"]
        assert dst // 4096 != dummy // 4096

    def test_warm_variant_registers_regions(self):
        warm = make_me_v1_mv(n_keys=1, warm_dst=True)
        assert warm.warm_regions == [("dst_buf", 64)]
        assert make_me_v1_mv(n_keys=1).warm_regions == []


class TestMemcmpWorkload:
    def test_results_match_reference(self):
        n_pairs = 6
        workload = make_ct_memcmp(n_pairs=n_pairs, seed=9, n_runs=2)
        program = workload.assemble()
        pairs_by_run = [memcmp_input_pairs(n_pairs, 32, 9),
                        memcmp_input_pairs(n_pairs, 32, 9 + 101)]
        for patches, pairs in zip(workload.inputs, pairs_by_run):
            patched = patch_program(program, patches)
            interp = Interpreter(patched)
            assert interp.run().exit_code == 0
            raw = interp.memory.read_bytes(patched.symbols["result_out"],
                                           8 * n_pairs)
            results = struct.unpack(f"<{n_pairs}q", raw)
            expected = tuple(100 if a == b else 204 for a, b in pairs)
            assert results == expected

    def test_labels_encode_equality(self):
        workload = make_ct_memcmp(n_pairs=4, seed=9, n_runs=1)
        pairs = memcmp_input_pairs(4, 32, 9)
        labels = struct.unpack("<4q", workload.inputs[0]["labels"])
        assert list(labels) == [1 if a == b else 0 for a, b in pairs]


class TestOpenSslPrimitives:
    def test_twenty_eight_primitives_counted(self):
        from repro.workloads.openssl import N_PRIMITIVES_TOTAL
        assert len(PRIMITIVES) == 27
        assert N_PRIMITIVES_TOTAL == 28  # + CRYPTO_memcmp

    @pytest.mark.parametrize("name", primitive_names())
    def test_primitive_functional(self, name):
        workload = make_primitive_workload(name, n_sets=5, n_runs=1, seed=31)
        program = workload.assemble()
        patched = patch_program(program, workload.inputs[0])
        interp = Interpreter(patched)
        assert interp.run().exit_code == 0
        raw = interp.memory.read_bytes(patched.symbols["results"], 8 * 5)
        got = struct.unpack("<5Q", raw)
        want = tuple(expected_primitive_results(name, workload.operand_sets[0]))
        assert got == want

    @pytest.mark.parametrize("name", primitive_names())
    def test_primitive_labels_balanced_enough(self, name):
        workload = make_primitive_workload(name, n_sets=32, n_runs=1, seed=37)
        labels = struct.unpack("<32q", workload.inputs[0]["labels"])
        assert {0, 1} == set(labels)

    def test_operand_sets_not_in_patches(self):
        workload = make_primitive_workload("constant_time_eq", n_sets=2,
                                           n_runs=1)
        assert "__operand_sets__" not in workload.inputs[0]
