"""Tests for the 128-bit (2-limb) bignum workloads."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import Interpreter
from repro.sampler import MicroSampler
from repro.sampler.runner import patch_program
from repro.uarch import MEGA_BOOM, Core
from repro.workloads.bignum import (
    MERSENNE_127,
    expected_mp_results,
    make_mp_modexp_ct,
    make_mp_modexp_leaky,
    make_mulmod_selftest,
    mp_modexp_reference,
)


def _run_mulmod(pairs):
    workload = make_mulmod_selftest(pairs)
    program = patch_program(workload.assemble(), workload.inputs[0])
    interp = Interpreter(program)
    assert interp.run().exit_code == 0
    raw = interp.memory.read_bytes(program.symbols["results"], 16 * len(pairs))
    out = []
    for k in range(len(pairs)):
        lo = int.from_bytes(raw[16 * k:16 * k + 8], "little")
        hi = int.from_bytes(raw[16 * k + 8:16 * k + 16], "little")
        out.append((hi << 64) | lo)
    return out


class TestMulmod:
    def test_edge_cases(self):
        pairs = [
            (0, 0), (1, 1), (0, MERSENNE_127 - 1),
            (MERSENNE_127 - 1, MERSENNE_127 - 1),
            (MERSENNE_127 - 1, 1), (1, MERSENNE_127 - 1),
            (1 << 126, 2), (1 << 63, 1 << 63),
            ((1 << 64) - 1, (1 << 64) - 1),
        ]
        results = _run_mulmod(pairs)
        for (a, b), got in zip(pairs, results):
            assert got == (a * b) % MERSENNE_127, (hex(a), hex(b))

    def test_random_operands(self):
        rng = random.Random(11)
        pairs = [(rng.getrandbits(127) % MERSENNE_127,
                  rng.getrandbits(127) % MERSENNE_127) for _ in range(24)]
        results = _run_mulmod(pairs)
        for (a, b), got in zip(pairs, results):
            assert got == (a * b) % MERSENNE_127

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, MERSENNE_127 - 1), st.integers(0, MERSENNE_127 - 1))
    def test_property_matches_python(self, a, b):
        assert _run_mulmod([(a, b)]) == [(a * b) % MERSENNE_127]

    def test_result_always_fully_reduced(self):
        # Values engineered so folds land near p.
        near_p = MERSENNE_127 - 1
        results = _run_mulmod([(near_p, near_p), (near_p, 2)])
        assert all(r < MERSENNE_127 for r in results)


class TestMpModexp:
    def test_reference(self):
        assert mp_modexp_reference(3, (4).to_bytes(2, "little")) == 81

    @pytest.mark.parametrize("make", [make_mp_modexp_ct, make_mp_modexp_leaky],
                             ids=["ct", "leaky"])
    def test_functional_interpreter(self, make):
        workload = make(n_keys=2, seed=7)
        program = workload.assemble()
        for patches, expected in zip(workload.inputs,
                                     expected_mp_results(workload)):
            patched = patch_program(program, patches)
            interp = Interpreter(patched)
            assert interp.run().exit_code == 0
            lo = int.from_bytes(
                interp.memory.read_bytes(patched.symbols["result_lo"], 8),
                "little")
            hi = int.from_bytes(
                interp.memory.read_bytes(patched.symbols["result_hi"], 8),
                "little")
            assert (hi << 64) | lo == expected

    def test_functional_on_core(self):
        workload = make_mp_modexp_ct(n_keys=1, seed=9)
        program = patch_program(workload.assemble(), workload.inputs[0])
        core = Core(program, MEGA_BOOM)
        assert core.run().exit_code == 0
        lo = int.from_bytes(core.memory.read_bytes(
            program.symbols["result_lo"], 8), "little")
        hi = int.from_bytes(core.memory.read_bytes(
            program.symbols["result_hi"], 8), "little")
        assert (hi << 64) | lo == expected_mp_results(workload)[0]

    def test_iterations_are_long(self):
        """Each key-bit iteration is multi-limb scale (100s of instructions)."""
        workload = make_mp_modexp_ct(n_keys=1, seed=7)
        program = patch_program(workload.assemble(), workload.inputs[0])
        result = Interpreter(program).run()
        assert result.steps / 16 > 100  # instructions per iteration

    def test_ct_version_verifies_clean(self):
        report = MicroSampler(MEGA_BOOM).analyze(
            make_mp_modexp_ct(n_keys=4, seed=2))
        assert not report.leakage_detected

    def test_leaky_version_flags_multiplier(self):
        report = MicroSampler(MEGA_BOOM).analyze(
            make_mp_modexp_leaky(n_keys=4, seed=2))
        assert report.leakage_detected
        assert "EUU-MUL" in report.leaky_units
