"""Memory-system unit tests: cache, MSHRs, LFB, TLB, prefetcher, store policy."""

import pytest

from repro.uarch.config import CacheConfig
from repro.uarch.memsys import (
    DataCachePort,
    InstructionCachePort,
    LineFillBuffer,
    LfbEntry,
    NextLinePrefetcher,
    SetAssocCache,
    Tlb,
)


def _cache(sets=4, ways=2):
    return SetAssocCache(CacheConfig(sets=sets, ways=ways))


def _port(**overrides):
    defaults = dict(
        cache_config=CacheConfig(sets=4, ways=2, mshrs=2, hit_latency=3),
        tlb_entries=4, page_size=4096, tlb_miss_latency=20,
        memory_latency=30, lfb_entries=4, prefetcher_enabled=True,
    )
    defaults.update(overrides)
    cache_config = defaults.pop("cache_config")
    return DataCachePort(cache_config, **defaults)


class TestSetAssocCache:
    def test_miss_then_hit(self):
        cache = _cache()
        assert not cache.lookup(5)
        cache.install(5)
        assert cache.lookup(5)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_lru_eviction_order(self):
        cache = _cache(sets=1, ways=2)
        cache.install(0)
        cache.install(1)
        cache.lookup(0)          # 0 becomes MRU
        victim = cache.install(2)
        assert victim == 1       # LRU evicted

    def test_set_indexing_no_conflict_across_sets(self):
        cache = _cache(sets=4, ways=1)
        for line in range(4):
            assert cache.install(line) is None
        for line in range(4):
            assert cache.contains(line)

    def test_flush_line(self):
        cache = _cache()
        cache.install(cache.line_address(0x1000))
        assert cache.flush_line(0x1000)
        assert not cache.contains(cache.line_address(0x1000))
        assert not cache.flush_line(0x1000)

    def test_line_address_uses_line_size(self):
        cache = _cache()
        assert cache.line_address(0) == cache.line_address(63)
        assert cache.line_address(64) == cache.line_address(0) + 1

    def test_resident_lines_lists_contents(self):
        cache = _cache()
        cache.install(1)
        cache.install(2)
        assert set(cache.resident_lines()) == {1, 2}


class TestTlb:
    def test_miss_then_hit(self):
        tlb = Tlb(entries=2, page_size=4096, miss_latency=20)
        assert tlb.translate(0x1000) == 20
        assert tlb.translate(0x1fff) == 0  # same page
        assert tlb.misses == 1 and tlb.hits == 1

    def test_lru_capacity(self):
        tlb = Tlb(entries=2, page_size=4096, miss_latency=20)
        tlb.translate(0x1000)
        tlb.translate(0x2000)
        tlb.translate(0x1000)       # page 1 becomes MRU
        tlb.translate(0x3000)       # evicts page 2
        assert tlb.translate(0x2000) == 20

    def test_resident_pages_mru_order(self):
        tlb = Tlb(entries=4, page_size=4096, miss_latency=20)
        tlb.translate(0x1000)
        tlb.translate(0x2000)
        tlb.translate(0x1000)
        assert tlb.resident_pages() == (2, 1)


class TestPrefetcher:
    def test_next_line(self):
        pf = NextLinePrefetcher(enabled=True)
        assert pf.on_demand_miss(10) == 11
        assert pf.last_prefetch_line == 11
        assert pf.issued == 1

    def test_disabled(self):
        pf = NextLinePrefetcher(enabled=False)
        assert pf.on_demand_miss(10) is None
        assert pf.issued == 0


class TestLineFillBuffer:
    def test_capacity_and_ready(self):
        lfb = LineFillBuffer(2)
        lfb.add(LfbEntry(1, ready_cycle=5))
        lfb.add(LfbEntry(2, ready_cycle=10))
        assert lfb.full()
        ready = lfb.pop_ready(7)
        assert [e.line_addr for e in ready] == [1]
        assert not lfb.full()


class TestDataCachePort:
    def test_load_hit_latency(self):
        port = _port()
        port.warm_line(0x1000)
        port.tlb.translate(0x1000)  # pre-warm the TLB entry
        result = port.request(0x1000, cycle=100)
        assert result.accepted and result.hit
        assert result.complete_cycle == 103

    def test_load_miss_allocates_mshr_and_prefetch(self):
        port = _port()
        result = port.request(0x1000, cycle=0)
        assert result.accepted and not result.hit
        lines = port.mshr_addresses()
        line = port.cache.line_address(0x1000)
        assert line in lines and (line + 1) in lines  # demand + next-line

    def test_miss_joins_pending_fill(self):
        port = _port(prefetcher_enabled=False)
        port.tlb.translate(0x1000)  # isolate cache behaviour from TLB fills
        first = port.request(0x1000, cycle=0)
        second = port.request(0x1008, cycle=1)  # same line
        assert len(port.mshr_addresses()) == 1
        assert abs(second.complete_cycle - first.complete_cycle) <= 4

    def test_mshr_full_rejects(self):
        port = _port(prefetcher_enabled=False)
        port.request(0x0000, cycle=0)
        port.request(0x4000, cycle=0)  # 2 MSHRs in config
        result = port.request(0x8000, cycle=0)
        assert not result.accepted

    def test_fill_installs_line_via_lfb(self):
        port = _port(prefetcher_enabled=False)
        port.request(0x1000, cycle=0)
        line = port.cache.line_address(0x1000)
        for cycle in range(1, 40):
            port.begin_cycle()
            port.tick(cycle)
        assert port.cache.contains(line)
        assert not port.mshr_addresses()
        assert not port.lfb.entries

    def test_store_hit_is_fast(self):
        port = _port()
        port.warm_line(0x1000)
        port.tlb.translate(0x1000)
        result = port.request(0x1000, cycle=10, is_store=True)
        assert result.accepted and result.hit
        assert result.complete_cycle == 11

    def test_store_miss_is_posted_write_without_allocation(self):
        port = _port()
        result = port.request(0x1000, cycle=0, is_store=True)
        assert result.accepted and not result.hit
        line = port.cache.line_address(0x1000)
        for cycle in range(1, 60):
            port.begin_cycle()
            port.tick(cycle)
        # no-write-allocate: the line must NOT be installed by the store.
        assert not port.cache.contains(line)

    def test_store_miss_triggers_next_line_prefetch_fill(self):
        port = _port()
        port.request(0x1000, cycle=0, is_store=True)
        line = port.cache.line_address(0x1000)
        for cycle in range(1, 60):
            port.begin_cycle()
            port.tick(cycle)
        assert port.cache.contains(line + 1)  # prefetch fills, store does not

    def test_requests_this_cycle_reset(self):
        port = _port()
        port.request(0x1000, cycle=0)
        assert port.requests_this_cycle == [0x1000]
        port.begin_cycle()
        assert port.requests_this_cycle == []

    def test_tlb_miss_adds_latency(self):
        port = _port()
        port.warm_line(0x1000)
        cold = port.request(0x1000, cycle=0)
        port.begin_cycle()
        warm = port.request(0x1008, cycle=0)
        assert cold.complete_cycle - warm.complete_cycle == 20


class TestInstructionCachePort:
    def test_miss_then_fill_then_hit(self):
        port = InstructionCachePort(CacheConfig(sets=4, ways=2, mshrs=2), 30)
        assert port.fetch_ready(0x1000, cycle=0) is None
        for cycle in range(1, 40):
            port.tick(cycle)
        assert port.fetch_ready(0x1000, cycle=40) == 40

    def test_pending_capacity(self):
        port = InstructionCachePort(CacheConfig(sets=4, ways=2, mshrs=1), 30)
        assert port.fetch_ready(0x0000, cycle=0) is None
        assert port.fetch_ready(0x4000, cycle=0) is None  # mshr full: no fill
        assert len(port.pending) == 1

    def test_flush_line(self):
        port = InstructionCachePort(CacheConfig(sets=4, ways=2, mshrs=2), 30)
        port.fetch_ready(0x1000, cycle=0)
        for cycle in range(1, 40):
            port.tick(cycle)
        assert port.flush_line(0x1000)
        assert port.fetch_ready(0x1000, cycle=50) is None
