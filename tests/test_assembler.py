"""Assembler tests: labels, pseudo-instructions, directives, diagnostics."""

import pytest

from repro.isa import AssemblerError, assemble, format_instruction, run_program
from repro.isa.assembler import Assembler


def _single(source, **kwargs):
    program = assemble(".text\n" + source, **kwargs)
    assert len(program.instructions) >= 1
    return program.instructions


def test_basic_r_type():
    (inst,) = _single("add a0, a1, a2")
    assert (inst.mnemonic, inst.rd, inst.rs1, inst.rs2) == ("add", 10, 11, 12)


def test_memory_operand_forms():
    (load,) = _single("lw t0, 8(sp)")
    assert (load.mnemonic, load.rd, load.rs1, load.imm) == ("lw", 5, 2, 8)
    (store,) = _single("sd a0, -16(s0)")
    assert (store.mnemonic, store.rs2, store.rs1, store.imm) == ("sd", 10, 8, -16)


def test_negative_and_hex_immediates():
    (inst,) = _single("addi t0, t0, -1")
    assert inst.imm == -1
    (inst,) = _single("andi t0, t0, 0xff")
    assert inst.imm == 0xFF


@pytest.mark.parametrize("pseudo,expansion", [
    ("mv a0, a1", ("addi", 10, 11, 0)),
    ("not a0, a1", ("xori", 10, 11, -1)),
    ("neg a0, a1", ("sub", 10, 0, 11)),
    ("seqz a0, a1", ("sltiu", 10, 11, 1)),
    ("snez a0, a1", ("sltu", 10, 0, 11)),
    ("nop", ("addi", 0, 0, 0)),
    ("sext.w a0, a1", ("addiw", 10, 11, 0)),
])
def test_simple_pseudos(pseudo, expansion):
    (inst,) = _single(pseudo)
    mnemonic, rd, rs1_or_rs2a, imm_or_rs2 = expansion
    assert inst.mnemonic == mnemonic


def test_ret_expansion():
    (inst,) = _single("ret")
    assert (inst.mnemonic, inst.rd, inst.rs1, inst.imm) == ("jalr", 0, 1, 0)


def test_jalr_three_operand_form():
    (inst,) = _single("jalr ra, t0, 4")
    assert (inst.mnemonic, inst.rd, inst.rs1, inst.imm) == ("jalr", 1, 5, 4)


def test_jalr_offset_form():
    (inst,) = _single("jalr zero, 0(ra)")
    assert (inst.mnemonic, inst.rd, inst.rs1, inst.imm) == ("jalr", 0, 1, 0)


@pytest.mark.parametrize("value", [
    0, 1, -1, 2047, -2048, 2048, 0x12345000, 0x7FFFFFFF, -0x80000000,
    0x123456789, 0x7FFFFFFFFFFFFFFF, -0x8000000000000000, 0xDEADBEEFCAFEBABE,
])
def test_li_value_via_memory(value):
    source = f"""
.data
out: .zero 8
.text
main:
    li t0, {value}
    la t1, out
    sd t0, 0(t1)
    li a0, 0
    li a7, 93
    ecall
"""
    program = assemble(source, entry="main")
    from repro.isa import Interpreter
    interp = Interpreter(program)
    interp.run()
    stored = int.from_bytes(interp.memory.read_bytes(program.symbols["out"], 8),
                            "little")
    assert stored == value & 0xFFFFFFFFFFFFFFFF


def test_la_loads_symbol_address():
    source = """
.data
x: .dword 7
.text
main:
    la a0, x
"""
    program = assemble(source)
    from repro.isa import Interpreter
    interp = Interpreter(program)
    interp.step()
    interp.step()
    assert interp.read_reg(10) == program.symbols["x"]


def test_branch_to_label_offsets():
    source = """
.text
top:
    addi t0, t0, 1
    beq t0, t1, top
    j top
"""
    program = assemble(source)
    beq = program.instructions[1]
    assert beq.imm == -4
    jal = program.instructions[2]
    assert jal.imm == -8


def test_numeric_local_labels():
    source = """
.text
1:
    addi t0, t0, 1
    bnez t0, 1b
    j 1f
1:
    nop
"""
    program = assemble(source)
    bnez = program.instructions[1]
    assert bnez.branch_target() == program.instructions[0].pc
    jal = program.instructions[2]
    assert jal.branch_target() == program.instructions[3].pc


def test_data_directives_layout():
    source = """
.data
bytes: .byte 1, 2, 3
half:  .half 0x1234
word:  .word -1
dword: .dword 0x1122334455667788
pad:   .zero 4
text_str: .asciz "hi"
.text
main: nop
"""
    program = assemble(source)
    data = bytes(program.data)
    assert data[0:3] == b"\x01\x02\x03"
    offset = program.symbols["half"] - program.data_base
    assert data[offset:offset + 2] == b"\x34\x12"
    offset = program.symbols["word"] - program.data_base
    assert data[offset:offset + 4] == b"\xff\xff\xff\xff"
    offset = program.symbols["dword"] - program.data_base
    assert data[offset:offset + 8] == bytes.fromhex("8877665544332211")
    offset = program.symbols["text_str"] - program.data_base
    assert data[offset:offset + 3] == b"hi\x00"


def test_align_directive_pads_data():
    source = """
.data
a: .byte 1
.align 3
b: .dword 2
.text
main: nop
"""
    program = assemble(source)
    assert program.symbols["b"] % 8 == 0


def test_duplicate_label_rejected():
    with pytest.raises(AssemblerError, match="duplicate"):
        assemble(".text\nx: nop\nx: nop")


def test_undefined_label_rejected():
    with pytest.raises(AssemblerError, match="undefined"):
        assemble(".text\nj nowhere")


def test_unknown_mnemonic_rejected():
    with pytest.raises(AssemblerError, match="unknown mnemonic"):
        assemble(".text\nfrobnicate a0, a1")


def test_instruction_in_data_section_rejected():
    with pytest.raises(AssemblerError, match="outside .text"):
        assemble(".data\nadd a0, a0, a0")


def test_missing_entry_label_rejected():
    with pytest.raises(AssemblerError, match="entry"):
        assemble(".text\nnop", entry="main")


def test_no_following_numeric_label():
    # With at least one definition present, a dangling forward ref is precise.
    with pytest.raises(AssemblerError, match="no following label"):
        assemble(".text\n1: nop\nj 2f\n2: nop\nj 2f")
    # With no numeric definitions at all it degrades to an undefined label.
    with pytest.raises(AssemblerError, match="undefined"):
        assemble(".text\nj 1f")


def test_comments_are_stripped():
    program = assemble(".text\nnop # a comment\nnop // another\n")
    assert len(program.instructions) == 2


def test_label_and_instruction_on_one_line():
    program = assemble(".text\nstart: nop\n")
    assert program.symbols["start"] == program.instructions[0].pc


def test_custom_bases():
    program = Assembler(text_base=0x2000, data_base=0x8000).assemble(
        ".data\nv: .word 1\n.text\nmain: nop\n"
    )
    assert program.text_base == 0x2000
    assert program.symbols["v"] == 0x8000


def test_format_instruction_is_readable(sum_program):
    rendered = [format_instruction(i) for i in sum_program.instructions]
    assert any("lw" in r for r in rendered)
    assert all(isinstance(r, str) and r for r in rendered)


def test_instruction_at_bounds(sum_program):
    assert sum_program.instruction_at(sum_program.text_base) is not None
    end = sum_program.text_base + sum_program.text_size
    assert sum_program.instruction_at(end) is None
    assert sum_program.instruction_at(sum_program.text_base + 2) is None


def test_branch_relaxation_long_loop():
    """A backward branch over >4 KiB of code relaxes to bne+jal."""
    filler = "\n".join("    addi t1, t1, 1" for _ in range(1200))
    source = f"""
.text
main:
    li t0, 2
    li t1, 0
loop:
{filler}
    addi t0, t0, -1
    bgtz t0, loop
    mv a0, t1
    li a7, 93
    ecall
"""
    program = assemble(source, entry="main")
    # The relaxed pair: an inverted branch skipping a jal back to the loop.
    mnemonics = [i.mnemonic for i in program.instructions]
    assert "jal" in mnemonics
    from repro.isa import encode
    for inst in program.instructions:
        encode(inst)  # everything must fit its encoding
    result = run_program(assemble(source, entry="main"))
    assert result.exit_code == 2400


def test_short_branches_not_relaxed():
    program = assemble(".text\nmain:\n beqz t0, main\n")
    assert [i.mnemonic for i in program.instructions] == ["beq"]


def test_immediate_out_of_range_rejected_at_assembly():
    with pytest.raises(AssemblerError, match="12-bit"):
        assemble(".text\naddi t0, t0, 5000")
    with pytest.raises(AssemblerError, match="shift amount"):
        assemble(".text\nslliw t0, t0, 40")


# -- seeded fuzz: whole-program disassemble/re-assemble fixed point -----------
#
# Random generated programs (the co-simulation corpus) are assembled, every
# instruction disassembled, and the resulting flat listing re-assembled.
# Pseudo-expansions (li, la, call...) and relaxed branches are concrete
# instructions by then, so the second pass must reproduce the program
# exactly: same mnemonics, fields and machine words at every address.


@pytest.mark.parametrize("seed", range(6))
def test_fuzz_program_reassembly_fixed_point(seed):
    from repro.isa import encode
    from repro.workloads import fuzz

    program = fuzz.generate(seed)
    listing = ".text\nmain:\n" + "\n".join(
        f"    {format_instruction(inst)}" for inst in program.instructions
    )
    reassembled = assemble(listing, entry="main")
    assert len(reassembled.instructions) == len(program.instructions)
    for original, round_tripped in zip(program.instructions,
                                       reassembled.instructions):
        assert original.pc == round_tripped.pc
        assert encode(original) == encode(round_tripped)
        assert (original.mnemonic, original.rd, original.rs1,
                original.rs2, original.imm) == (
            round_tripped.mnemonic, round_tripped.rd, round_tripped.rs1,
            round_tripped.rs2, round_tripped.imm)
