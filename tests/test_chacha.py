"""ChaCha20 workload tests (RFC 7539 conformance + verification verdict)."""

import struct

import pytest

from repro.isa import Interpreter
from repro.sampler import MicroSampler
from repro.sampler.runner import patch_program
from repro.uarch import MEGA_BOOM, Core
from repro.workloads.chacha import (
    chacha20_block,
    expected_keystreams,
    generate_chacha_source,
    make_chacha20,
)

RFC_KEY = bytes(range(32))
RFC_NONCE = bytes.fromhex("000000090000004a00000000")
RFC_BLOCK_1 = bytes.fromhex(
    "10f1e7e4d13b5915500fdd1fa32071c4"
    "c7d1f4c733c068030422aa9ac3d46c4e"
    "d2826446079faa0914c2d705d98b02a2"
    "b5129cd1de164eb9cbd083e8a2503c4e"
)


class TestReference:
    def test_rfc7539_vector(self):
        assert chacha20_block(RFC_KEY, 1, RFC_NONCE) == RFC_BLOCK_1

    def test_counter_changes_block(self):
        assert chacha20_block(RFC_KEY, 0, RFC_NONCE) != \
            chacha20_block(RFC_KEY, 1, RFC_NONCE)

    def test_bad_lengths_rejected(self):
        with pytest.raises(ValueError):
            chacha20_block(b"short", 0, RFC_NONCE)
        with pytest.raises(ValueError):
            chacha20_block(RFC_KEY, 0, b"short")


class TestAssemblyImplementation:
    def test_matches_reference_on_interpreter(self):
        workload = make_chacha20(n_keys=3, n_blocks=2, seed=6)
        program = workload.assemble()
        for patches, expected in zip(workload.inputs,
                                     expected_keystreams(workload)):
            patched = patch_program(program, patches)
            interp = Interpreter(patched)
            assert interp.run().exit_code == 0
            got = interp.memory.read_bytes(patched.symbols["out"],
                                           len(expected))
            assert got == expected

    def test_matches_reference_on_core(self):
        workload = make_chacha20(n_keys=1, n_blocks=1, seed=8)
        program = patch_program(workload.assemble(), workload.inputs[0])
        core = Core(program, MEGA_BOOM)
        assert core.run().exit_code == 0
        expected = expected_keystreams(workload)[0]
        assert core.memory.read_bytes(program.symbols["out"],
                                      len(expected)) == expected

    def test_generated_source_shape(self):
        source = generate_chacha_source(n_blocks=2)
        assert source.count("double round") == 10
        assert "slliw" in source and "srliw" in source  # rotates
        assert "iter.begin" in source

    def test_labels_are_key_bit(self):
        workload = make_chacha20(n_keys=6, seed=6)
        for patches, (key, _nonce) in zip(workload.inputs,
                                          workload.key_nonces):
            label = int.from_bytes(patches["label_val"], "little")
            assert label == key[0] & 1


class TestVerification:
    def test_chacha_is_perfectly_constant_time(self):
        report = MicroSampler(MEGA_BOOM).analyze(
            make_chacha20(n_keys=6, n_blocks=1, seed=6))
        assert not report.leakage_detected
        # ARX with fixed-latency units: snapshots are bit-identical across
        # classes, so measured association is exactly zero everywhere.
        assert max(report.cramers_v_by_unit().values()) == pytest.approx(0.0)
