"""Unit tests for the secret-taint publicness engine.

Covers the per-mnemonic propagation rules, escalation kinds, the transient
shadow walk, publicness-map plumbing (spans, merge, serialization), the
unit-reachability table, and the pipeline-level TaintSummary agreement
statuses.  The end-to-end soundness property lives in
``test_taint_fuzz.py``; the off/on verdict identity in
``test_taint_differential.py``.
"""

from __future__ import annotations

import pytest

from repro.isa.assembler import assemble
from repro.taint import (
    FULL,
    PublicnessMap,
    TaintError,
    TaintInterpreter,
    alu_taint,
    compute_publicness,
    resolve_secret_spans,
    spread_up,
    taint_run,
)
from repro.uarch.config import MEGA_BOOM
from repro.uarch.reachability import (
    DATA_CARRYING_FEATURES,
    prunable_features,
    reachable_features,
)


# -- alu_taint rules ---------------------------------------------------------


def test_spread_up_models_carry_chains():
    assert spread_up(0x01) == 0xFF
    assert spread_up(0x10) == 0xF0
    assert spread_up(0x80) == 0x80
    assert spread_up(0) == 0


def test_bitwise_is_byte_local():
    assert alu_taint("xor", 0x03, 0x10, 0) == 0x13
    assert alu_taint("and", 0x00, 0x00, 0) == 0


def test_add_spreads_carries_up_only():
    assert alu_taint("add", 0x02, 0, 0) == 0xFE
    assert alu_taint("addi", 0x80, 0, 0) == 0x80


def test_comparisons_confine_to_low_byte():
    assert alu_taint("sltu", FULL, 0, 0) == 0x01


def test_public_shift_relocates_mask():
    # Byte-aligned shifts relocate the mask exactly; sub-byte shifts
    # conservatively cover both straddled bytes.
    assert alu_taint("slli", 0x01, 0, 8) == 0x02
    assert alu_taint("slli", 0x01, 0, 4) == 0x03
    assert alu_taint("srli", 0x80, 0, 8) == 0x40
    assert alu_taint("srli", 0x80, 0, 4) == 0xC0


def test_secret_shift_amount_taints_everything():
    assert alu_taint("sll", 0x01, FULL, 3) == FULL


def test_sra_replicates_tainted_sign():
    mask = alu_taint("srai", 0x80, 0, 16)
    assert mask & 0x80, "sign replication must keep the top byte tainted"


def test_mul_div_taint_fully():
    assert alu_taint("mul", 0x01, 0, 0) == FULL
    assert alu_taint("divu", 0, 0x10, 0) == FULL
    assert alu_taint("mulw", 0x01, 0, 0) == 0xFF  # sext32 of 0x0F


def test_word_shifts_confine_to_low_half_then_sign_extend():
    # W-form shifts operate on the low 32 bits; a mask shifted out of them
    # is dropped, and a tainted bit 31 sign-extends through bytes 4-7.
    assert alu_taint("slliw", 0x01, 0, 8) == 0x02
    assert alu_taint("slliw", 0x01, 0, 24) == 0xF8  # byte 3 = sign
    assert alu_taint("srliw", 0x08, 0, 8) == 0x04
    assert alu_taint("sraw", 0x08, 0, 8) == 0xFC  # tainted sign replicated
    assert alu_taint("sllw", 0x01, FULL, 3) == FULL  # secret amount


# -- interpreter-level propagation and escalation ----------------------------


def _taint_program(body: str, data: str = "secret: .dword 0x1122334455667788"):
    source = f""".data
{data}
out: .zero 8
.text
main:
{body}
    li a0, 0
    li a7, 93
    ecall
"""
    return assemble(source, entry="main")


def _run_tainted(program, symbol="secret", length=8, max_steps=10_000):
    taint = TaintInterpreter(program)
    taint.taint_bytes(program.symbols[symbol], length)
    taint.run(max_steps=max_steps)
    return taint


def test_load_propagates_memory_taint_to_register():
    program = _taint_program("""    la t0, secret
    ld t1, 0(t0)
    la t2, out
    sd t1, 0(t2)""")
    taint = _run_tainted(program)
    assert not taint.escalated
    out = program.symbols["out"]
    assert all(address in taint.mem_taint
               for address in range(out, out + 8))


def test_signed_subbyte_load_spreads_sign():
    program = _taint_program("""    la t0, secret
    lb t1, 7(t0)""")
    taint = _run_tainted(program)
    # The sign of the loaded byte fills bytes 1-7: all must be tainted.
    assert taint.reg_taint[6] == FULL  # t1 = x6


def test_tainted_branch_escalates():
    program = _taint_program("""    la t0, secret
    ld t1, 0(t0)
    beqz t1, skip
    nop
skip:
    nop""")
    taint = _run_tainted(program)
    assert taint.escalated
    assert any(kind == "branch" for _pc, kind in taint.escalations)
    assert taint.tainted_branch_pcs


def test_tainted_store_address_escalates():
    program = _taint_program("""    la t0, secret
    lbu t1, 0(t0)
    andi t1, t1, 7
    la t2, out
    add t2, t2, t1
    sb t1, 0(t2)""")
    taint = _run_tainted(program)
    assert any(kind == "store-address" for _pc, kind in taint.escalations)


def test_tainted_load_address_records_mem_pc():
    program = _taint_program("""    la t0, secret
    lbu t1, 0(t0)
    andi t1, t1, 7
    la t2, secret
    add t2, t2, t1
    lbu t3, 0(t2)""")
    taint = _run_tainted(program)
    assert taint.tainted_mem_pcs


def test_public_program_stays_clean():
    program = _taint_program("""    li t0, 41
    addi t0, t0, 1
    la t1, out
    sd t0, 0(t1)""")
    taint = _run_tainted(program)
    assert not taint.escalated
    assert not taint.tainted_pcs
    assert all(mask == 0 for mask in taint.reg_taint)


def test_transient_walk_catches_dead_secret_dereference():
    # The bounds check always fails architecturally, so the secret-indexed
    # load never executes — but it sits in the not-taken shadow, exactly
    # the Spectre-v1 shape the transient walk must flag.
    program = _taint_program("""    la t0, secret
    lbu t1, 0(t0)
    li t2, 0
    li t3, 1
    bge t2, t3, done
    j over
done:
    nop
over:
    blt t2, t3, fin
    andi t1, t1, 63
    la t4, out
    add t4, t4, t1
    lbu t5, 0(t4)
fin:
    nop""")
    taint = _run_tainted(program)
    assert not taint.escalated
    assert taint.transient_mem_pcs


def test_tainted_jump_target_escalates():
    # Multiply by zero keeps FULL taint on a zero value, so the jalr lands
    # on the real target while its base register is secret-tainted.
    program = _taint_program("""    la t0, secret
    ld t1, 0(t0)
    li t2, 0
    mul t3, t1, t2
    la t4, tgt
    add t4, t4, t3
    jalr ra, 0(t4)
tgt:
    nop""")
    taint = _run_tainted(program)
    assert any(kind == "jump-target" for _pc, kind in taint.escalations)


def test_tainted_syscall_argument_escalates():
    # andi with 0 zeroes the value but the bitwise rule keeps the mask, so
    # the exit code is architecturally clean while a0 stays tainted.
    program = _taint_program("""    la t0, secret
    ld a0, 0(t0)
    andi a0, a0, 0
    li a7, 93
    ecall""")
    taint = _run_tainted(program)
    assert any(kind == "syscall" for _pc, kind in taint.escalations)


def test_transient_walk_catches_dead_secret_store_address():
    program = _taint_program("""    la t0, secret
    lbu t1, 0(t0)
    li t2, 0
    li t3, 1
    blt t2, t3, fin
    andi t1, t1, 63
    la t4, out
    add t4, t4, t1
    sb zero, 0(t4)
fin:
    nop""")
    taint = _run_tainted(program)
    assert not taint.escalated
    assert taint.transient_mem_pcs


def test_reset_recording_keeps_taint_drops_pc_sets():
    program = _taint_program("""    la t0, secret
    ld t1, 0(t0)""")
    taint = _run_tainted(program)
    assert taint.executed_pcs and taint.tainted_pcs
    assert taint.reg_taint[6] == FULL
    taint.reset_recording()
    assert not taint.executed_pcs and not taint.tainted_pcs
    assert taint.reg_taint[6] == FULL  # taint state survives the reset


# -- spans, maps, campaign plumbing ------------------------------------------


def test_resolve_secret_spans_symbol_and_triple():
    program = _taint_program("    nop", data="key: .zero 32")
    spans = resolve_secret_spans(program, {"key": b"x" * 32}, ["key"])
    assert spans == [(program.symbols["key"], 32)]
    spans = resolve_secret_spans(program, {}, [("key", 8, 16)])
    assert spans == [(program.symbols["key"] + 8, 16)]
    # A symbol region only covers bytes the input actually patches.
    assert resolve_secret_spans(program, {}, ["key"]) == []
    with pytest.raises(TaintError):
        resolve_secret_spans(program, {}, ["nonexistent"])


def test_taint_run_requires_roi():
    program = _taint_program("    nop")
    with pytest.raises(TaintError):
        taint_run(program, [(program.symbols["secret"], 8)])


_LOOPING_ROI = """.data
secret: .dword 1
.text
main:
    roi.begin
loop:
    j loop
    roi.end
    li a0, 0
    li a7, 93
    ecall
"""


def test_taint_run_enforces_step_budget():
    program = assemble(_LOOPING_ROI, entry="main")
    with pytest.raises(TaintError, match="step budget"):
        taint_run(program, [(program.symbols["secret"], 8)], max_steps=200)


def test_batch_single_program_falls_back_to_scalar():
    from repro.taint import taint_runs_batch
    from repro.workloads.memcmp import make_ct_memcmp_safe

    workload = make_ct_memcmp_safe(n_pairs=4, seed=2, n_runs=1)
    program = workload.assemble()
    from repro.sampler.runner import patch_program

    patched = patch_program(program, workload.inputs[0])
    spans = resolve_secret_spans(patched, workload.inputs[0],
                                 workload.secret_regions)
    (batched,) = taint_runs_batch([patched], [spans], lanes=8,
                                  max_steps=500_000)
    assert batched == taint_run(patched, spans, max_steps=500_000)


def test_batch_taint_error_paths():
    from repro.sampler.runner import patch_program
    from repro.taint import taint_runs_batch

    # No ROI markers: the batch prologue never reaches roi.begin.
    plain = _taint_program("    nop")
    with pytest.raises(TaintError, match="roi.begin"):
        taint_runs_batch([plain, plain], [[], []], lanes=2, max_steps=1_000)
    # A looping ROI exhausts the lane-uniform step budget.
    looping = assemble(_LOOPING_ROI, entry="main")
    programs = [patch_program(looping, {"secret": bytes([i] * 8)})
                for i in range(2)]
    spans = [[(looping.symbols["secret"], 8)]] * 2
    with pytest.raises(TaintError, match="step budget"):
        taint_runs_batch(programs, spans, lanes=2, max_steps=200)


def test_compute_publicness_batch_matches_scalar():
    from repro.workloads.memcmp import make_ct_memcmp_safe

    workload = make_ct_memcmp_safe(n_pairs=4, seed=2, n_runs=2)
    scalar = compute_publicness(workload)
    batched = compute_publicness(workload, batch_lanes="auto")
    assert batched.merged == scalar.merged
    assert batched.maps == scalar.maps


def test_publicness_map_roundtrip_and_merge():
    one = PublicnessMap(executed_pcs=frozenset({0, 4}),
                        tainted_pcs=frozenset({4}),
                        escalations=((4, "branch"),), steps=2)
    two = PublicnessMap(executed_pcs=frozenset({0, 8}),
                        tainted_pcs=frozenset({8}),
                        tainted_mem_pcs=frozenset({8}), steps=3)
    assert PublicnessMap.from_dict(one.to_dict()) == one
    merged = PublicnessMap.merge([one, two])
    assert merged.executed_pcs == frozenset({0, 4, 8})
    assert merged.escalated
    assert merged.steps == 5
    assert one.secret_free_pcs == frozenset()  # escalated voids exoneration
    assert two.secret_free_pcs == frozenset({0})


def test_compute_publicness_requires_secret_regions():
    from repro.workloads.memcmp import make_early_exit_memcmp

    workload = make_early_exit_memcmp(n_pairs=4, seed=2, n_runs=2)
    workload.secret_regions = []
    with pytest.raises(TaintError):
        compute_publicness(workload)


def test_compute_publicness_workload_verdicts():
    from repro.workloads.memcmp import (
        make_ct_memcmp_safe,
        make_early_exit_memcmp,
    )

    leaky = compute_publicness(
        make_early_exit_memcmp(n_pairs=4, seed=2, n_runs=2))
    assert leaky.merged.escalated
    safe = compute_publicness(
        make_ct_memcmp_safe(n_pairs=4, seed=2, n_runs=2))
    assert not safe.merged.escalated
    assert not safe.merged.tainted_branch_pcs
    assert safe.merged.tainted_pcs  # the secret is processed, data-only
    assert safe.seed_bytes > 0


# -- golden fixtures ---------------------------------------------------------


@pytest.mark.parametrize("name", ["taint_ee_memcmp", "taint_ct_memcmp_safe"])
def test_golden_taint_fixtures(name):
    """Fresh publicness maps match the pinned fixtures exactly.

    The maps are discrete (PC sets, escalation kinds), so the comparison
    is equality, not tolerance — any propagation-rule change that moves an
    attribution or flips a prune decision shows up as a fixture diff.
    """
    from tests.golden import load_golden, taint_cases, taint_to_golden

    publicness = compute_publicness(taint_cases()[name]())
    assert taint_to_golden(publicness) == load_golden(name)


def test_golden_ee_memcmp_attributes_compare_pair():
    """The pinned escalation sits on the memcmp compare: sub feeds bne."""
    from tests.golden import load_golden, taint_cases

    fixture = load_golden("taint_ee_memcmp")["merged"]
    program = taint_cases()["taint_ee_memcmp"]().assemble()
    by_pc = {inst.pc: inst.mnemonic for inst in program.instructions}
    assert [kind for _pc, kind in fixture["escalations"]] == ["branch"]
    (branch_pc,) = fixture["tainted_branch_pcs"]
    assert by_pc[branch_pc] == "bne"  # the bnez early exit
    # The operand the branch tests comes from the byte compare.
    assert by_pc[branch_pc - 4] == "sub"
    assert branch_pc - 4 in fixture["tainted_pcs"]


def test_golden_ct_memcmp_safe_is_negative_control():
    from tests.golden import load_golden

    fixture = load_golden("taint_ct_memcmp_safe")["merged"]
    assert not fixture["escalated"]
    assert fixture["tainted_branch_pcs"] == []
    assert fixture["transient_mem_pcs"] == []
    assert fixture["tainted_pcs"]  # the secret is processed, data-only


# -- reachability ------------------------------------------------------------

_FEATURES = frozenset({"LFB-Data", "ROB-PC", "Cache-ADDR", "EUU-DIV"})


def test_reachability_data_only_map_prunes_non_data_units():
    publicness = PublicnessMap(executed_pcs=frozenset({0}),
                               tainted_pcs=frozenset({0}))
    reachable = reachable_features(publicness, MEGA_BOOM, _FEATURES)
    assert reachable == DATA_CARRYING_FEATURES & _FEATURES
    assert prunable_features(publicness, MEGA_BOOM, _FEATURES) == \
        _FEATURES - DATA_CARRYING_FEATURES


def test_reachability_escalation_reaches_everything():
    publicness = PublicnessMap(escalations=((0, "branch"),))
    assert reachable_features(publicness, MEGA_BOOM, _FEATURES) == _FEATURES


def test_reachability_transient_mem_reaches_everything():
    publicness = PublicnessMap(transient_mem_pcs=frozenset({4}))
    assert reachable_features(publicness, MEGA_BOOM, _FEATURES) == _FEATURES


def test_reachability_config_gates():
    tainted_div = PublicnessMap(tainted_pcs=frozenset({0}),
                                tainted_div_pcs=frozenset({0}))
    assert reachable_features(tainted_div, MEGA_BOOM, _FEATURES) == \
        DATA_CARRYING_FEATURES & _FEATURES
    variable_div = MEGA_BOOM.with_(variable_div_latency=True)
    assert reachable_features(tainted_div, variable_div, _FEATURES) == \
        _FEATURES
    fast_bypass = MEGA_BOOM.with_(fast_bypass=True)
    tainted = PublicnessMap(tainted_pcs=frozenset({0}))
    assert reachable_features(tainted, fast_bypass, _FEATURES) == _FEATURES


# -- pipeline agreement ------------------------------------------------------


def test_analyze_fills_agreement_statuses():
    from repro.sampler.pipeline import MicroSampler
    from repro.uarch.config import SMALL_BOOM
    from repro.workloads.memcmp import make_early_exit_memcmp

    sampler = MicroSampler(SMALL_BOOM, taint=True, cache=None)
    report = sampler.analyze(
        make_early_exit_memcmp(n_pairs=8, seed=2, n_runs=2))
    taint = report.taint
    assert taint is not None
    assert taint.escalated
    assert taint.pruned == ()  # escalated maps never prune
    assert set(taint.agreement) == set(report.units)
    for feature_id, unit in report.units.items():
        expected = "agree-leak" if unit.leaky else "stats-clean"
        assert taint.agreement[feature_id] == expected
    assert not taint.disagreements


def test_analyze_off_mode_has_no_taint_section():
    from repro.sampler.pipeline import MicroSampler
    from repro.sampler.report import report_to_dict
    from repro.uarch.config import SMALL_BOOM
    from repro.workloads.memcmp import make_ct_memcmp_safe

    sampler = MicroSampler(SMALL_BOOM, cache=None)
    report = sampler.analyze(make_ct_memcmp_safe(n_pairs=8, seed=2,
                                                 n_runs=2))
    assert report.taint is None
    assert "taint" not in report_to_dict(report)
