"""Differential-verification (config diff) tests."""

import pytest

from repro.sampler.diff import diff_configs
from repro.uarch import MEGA_BOOM
from repro.workloads.modexp import make_me_v2_safe, make_sam_leaky

#: Config-diffing simulates every workload twice; too heavy for the
#: tier1 fast gate, still part of the full CI suite.
pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def fast_bypass_diff():
    return diff_configs(
        make_me_v2_safe(n_keys=4, seed=3),
        MEGA_BOOM,
        MEGA_BOOM.with_(fast_bypass=True),
    )


def test_fast_bypass_flagged_as_regression(fast_bypass_diff):
    assert not fast_bypass_diff.candidate_safe
    regressed = {d.feature_id for d in fast_bypass_diff.regressions}
    assert "EUU-ALU" in regressed


def test_deltas_cover_all_units(fast_bypass_diff):
    assert len(fast_bypass_diff.deltas) == 16


def test_identical_configs_show_no_change():
    diff = diff_configs(make_me_v2_safe(n_keys=3, seed=3),
                        MEGA_BOOM, MEGA_BOOM)
    assert diff.candidate_safe
    assert not diff.improvements
    for delta in diff.deltas:
        assert delta.v_baseline == delta.v_candidate


def test_improvement_direction():
    """Reversing baseline/candidate turns regressions into improvements."""
    diff = diff_configs(
        make_me_v2_safe(n_keys=4, seed=3),
        MEGA_BOOM.with_(fast_bypass=True),
        MEGA_BOOM,
    )
    assert diff.candidate_safe
    assert {d.feature_id for d in diff.improvements} >= {"EUU-ALU"}


def test_leak_on_both_is_not_a_regression():
    diff = diff_configs(make_sam_leaky(n_keys=3, seed=3),
                        MEGA_BOOM, MEGA_BOOM.with_(fast_bypass=True))
    both = [d for d in diff.deltas if d.leaky_baseline and d.leaky_candidate]
    assert both
    assert all(not d.regressed for d in both)


def test_render(fast_bypass_diff):
    text = fast_bypass_diff.render()
    assert "REGRESSION" in text
    assert "MegaBoom +fb" in text
    assert "VERDICT" in text
