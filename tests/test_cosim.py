"""Differential testing: out-of-order core vs golden-model interpreter.

Random RV64IM programs (Cascade-style) and every workload program must
produce identical architectural results on both simulators, for every core
configuration — including fast bypass and variable divider latency, which
must be pure performance features.
"""

import pytest

from repro.isa import Interpreter
from repro.sampler.runner import patch_program
from repro.uarch import MEGA_BOOM, SMALL_BOOM, Core
from repro.workloads import fuzz
from repro.workloads.memcmp import make_ct_memcmp
from repro.workloads.modexp import (
    expected_results,
    make_me_v1_cv,
    make_me_v1_mv,
    make_me_v2_safe,
    make_sam_ct,
    make_sam_leaky,
)

CONFIGS = [
    MEGA_BOOM,
    SMALL_BOOM,
    MEGA_BOOM.with_(fast_bypass=True),
    MEGA_BOOM.with_(variable_div_latency=True),
    SMALL_BOOM.with_(fast_bypass=True),
]


def _assert_equivalent(program, config):
    interp = Interpreter(program)
    ref = interp.run()
    core = Core(program, config)
    result = core.run(max_cycles=2_000_000)
    assert result.exit_code == ref.exit_code
    data_len = max(len(program.data), 8)
    assert (core.memory.read_bytes(program.data_base, data_len)
            == interp.memory.read_bytes(program.data_base, data_len))
    assert result.stats.committed == ref.steps


@pytest.mark.parametrize("seed", range(12))
def test_random_programs_mega(seed):
    _assert_equivalent(fuzz.generate(seed), MEGA_BOOM)


@pytest.mark.parametrize("seed", range(12, 20))
def test_random_programs_small(seed):
    _assert_equivalent(fuzz.generate(seed), SMALL_BOOM)


@pytest.mark.parametrize("seed", range(20, 26))
def test_random_programs_fast_bypass(seed):
    _assert_equivalent(fuzz.generate(seed), MEGA_BOOM.with_(fast_bypass=True))


@pytest.mark.parametrize("seed", range(26, 30))
def test_random_programs_variable_div(seed):
    _assert_equivalent(fuzz.generate(seed),
                       MEGA_BOOM.with_(variable_div_latency=True))


@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.name + (
    "+fb" if c.fast_bypass else "") + ("+vdiv" if c.variable_div_latency else ""))
def test_modexp_workloads_equivalent(config):
    for make in (make_sam_leaky, make_sam_ct, make_me_v1_cv,
                 make_me_v1_mv, make_me_v2_safe):
        workload = make(n_keys=1, seed=13)
        program = workload.assemble()
        patched = patch_program(program, workload.inputs[0])
        _assert_equivalent(patched, config)


def test_modexp_results_match_python_reference():
    workload = make_me_v2_safe(n_keys=3, seed=21)
    program = workload.assemble()
    for patches, expected in zip(workload.inputs, expected_results(workload)):
        patched = patch_program(program, patches)
        core = Core(patched, MEGA_BOOM)
        core.run()
        result_addr = patched.symbols["result"]
        value = int.from_bytes(core.memory.read_bytes(result_addr, 8), "little")
        assert value == expected


def test_memcmp_workload_equivalent():
    workload = make_ct_memcmp(n_pairs=4, seed=5, n_runs=1)
    program = workload.assemble()
    patched = patch_program(program, workload.inputs[0])
    _assert_equivalent(patched, MEGA_BOOM)


@pytest.mark.parametrize("seed", range(30, 42))
def test_memory_torture_mega(seed):
    """Dense overlapping loads/stores: forwarding and stall corner cases."""
    _assert_equivalent(fuzz.generate_torture(seed), MEGA_BOOM)


@pytest.mark.parametrize("seed", range(42, 48))
def test_memory_torture_small(seed):
    _assert_equivalent(fuzz.generate_torture(seed), SMALL_BOOM)


# -- straight-line differential fuzz ------------------------------------------
#
# Short branch-free programs isolate data-path semantics (ALU/M results,
# memory ordering, forwarding) from control-flow recovery: with no branches
# to mispredict, any divergence between the golden-model interpreter and the
# out-of-order core is a pure execution bug.  The configuration rotates
# through every core variant so the whole matrix sees the corpus.

_STRAIGHTLINE_CONFIGS = [
    MEGA_BOOM,
    SMALL_BOOM,
    MEGA_BOOM.with_(fast_bypass=True),
    MEGA_BOOM.with_(variable_div_latency=True),
]


@pytest.mark.parametrize("seed", range(100, 156))
def test_straightline_differential(seed):
    config = _STRAIGHTLINE_CONFIGS[seed % len(_STRAIGHTLINE_CONFIGS)]
    _assert_equivalent(fuzz.generate_straightline(seed), config)
