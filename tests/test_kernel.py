"""Proxy-kernel and memory-map tests."""

import pytest

from repro.isa.interpreter import FlatMemory
from repro.kernel import MemoryMap, ProxyKernel, SyscallError


class FakeCpu:
    """Minimal CpuView for driving the kernel directly."""

    def __init__(self, memory_size=1 << 20):
        self.regs = [0] * 32
        self.memory = FlatMemory(memory_size)

    def read_reg(self, num):
        return self.regs[num]

    def write_reg(self, num, value):
        if num:
            self.regs[num] = value


def test_memory_map_defaults_are_ordered():
    MemoryMap().validate()


def test_memory_map_rejects_bad_layout():
    bad = MemoryMap(text_base=0x5000, data_base=0x1000)
    with pytest.raises(ValueError):
        bad.validate()


def test_page_of():
    mm = MemoryMap()
    assert mm.page_of(0) == 0
    assert mm.page_of(4095) == 0
    assert mm.page_of(4096) == 1


def test_exit_syscall():
    kernel = ProxyKernel()
    cpu = FakeCpu()
    cpu.regs[17] = 93
    cpu.regs[10] = 7
    assert kernel.handle_ecall(cpu) is False
    assert kernel.exited and kernel.exit_code == 7


def test_exit_code_sign_extended():
    kernel = ProxyKernel()
    cpu = FakeCpu()
    cpu.regs[17] = 93
    cpu.regs[10] = 0xFFFFFFFFFFFFFFFF
    kernel.handle_ecall(cpu)
    assert kernel.exit_code == -1


def test_write_syscall_captures_console():
    kernel = ProxyKernel()
    cpu = FakeCpu()
    cpu.memory.write_bytes(0x100, b"hello world")
    cpu.regs[17] = 64
    cpu.regs[10] = 1
    cpu.regs[11] = 0x100
    cpu.regs[12] = 5
    assert kernel.handle_ecall(cpu) is True
    assert kernel.console_text == "hello"
    assert cpu.regs[10] == 5  # bytes written returned in a0


def test_brk_query_and_set():
    kernel = ProxyKernel()
    cpu = FakeCpu()
    cpu.regs[17] = 214
    cpu.regs[10] = 0
    kernel.handle_ecall(cpu)
    initial = cpu.regs[10]
    assert initial == kernel.memory_map.heap_base
    cpu.regs[17] = 214
    cpu.regs[10] = initial + 0x1000
    kernel.handle_ecall(cpu)
    assert cpu.regs[10] == initial + 0x1000


def test_brk_out_of_range_rejected():
    kernel = ProxyKernel()
    cpu = FakeCpu()
    cpu.regs[17] = 214
    cpu.regs[10] = kernel.memory_map.stack_top + 1
    with pytest.raises(SyscallError):
        kernel.handle_ecall(cpu)


def test_unknown_syscall_raises():
    kernel = ProxyKernel()
    cpu = FakeCpu()
    cpu.regs[17] = 12345
    with pytest.raises(SyscallError):
        kernel.handle_ecall(cpu)


def test_multiple_writes_accumulate():
    kernel = ProxyKernel()
    cpu = FakeCpu()
    cpu.memory.write_bytes(0x100, b"ab")
    cpu.regs[17] = 64
    cpu.regs[10] = 1
    cpu.regs[11] = 0x100
    cpu.regs[12] = 2
    kernel.handle_ecall(cpu)
    kernel.handle_ecall(cpu)
    assert kernel.console_text == "abab"
