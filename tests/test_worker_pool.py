"""Persistent worker pool: correctness, crash recovery, failure modes.

The pool is the campaign service's execution substrate, so these tests
lock in its two contracts: (1) pool output is bit-identical to in-process
serial execution, and (2) a worker dying mid-shard — injected here as a
real ``SIGKILL`` inside a real worker via the fault-token hook — is
recovered by replacing the worker and re-dispatching the shard, without
changing any result.
"""

from __future__ import annotations

import multiprocessing
import os
import signal

import pytest

from repro.cli import build_workload
from repro.sampler import exec_backend
from repro.sampler.checkpoint import DEFAULT_WARMUP_INSTS
from repro.sampler.exec_backend import (
    FAULT_TOKEN_ENV,
    ShardExecutionError,
    WorkerCrashError,
    WorkerPool,
    execute_tasks,
)
from repro.sampler.runner import prepare_campaign, run_campaign
from repro.uarch import SMALL_BOOM

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="worker pool tests patch module state across fork")


def make_tasks(n_inputs: int = 2, name: str = "sam-ct"):
    workload = build_workload(name, inputs=n_inputs, seed=3)
    plan = prepare_campaign(workload, SMALL_BOOM, cache=None,
                            warmup_insts=DEFAULT_WARMUP_INSTS)
    return plan.tasks


def output_signature(outputs):
    """Content fingerprint of a RunOutput list (order-sensitive)."""
    return [
        (output.run_index,
         [(record.label,
           sorted((feature_id, feature.snapshot_hash)
                  for feature_id, feature in record.features.items()))
          for record in output.iterations])
        for output in outputs
    ]


def campaign_signature(campaign):
    return [
        (record.index, record.run_index, record.label,
         sorted((feature_id, feature.snapshot_hash)
                for feature_id, feature in record.features.items()))
        for record in campaign.iterations
    ]


def test_pool_output_matches_serial():
    tasks = make_tasks(3)
    serial = execute_tasks(tasks, jobs=1)
    with WorkerPool(2) as pool:
        pooled = execute_tasks(tasks, pool=pool)
        stats = pool.stats()
    assert output_signature(pooled) == output_signature(serial)
    assert stats["shards_completed"] == 3
    assert stats["tasks_completed"] == 3
    assert stats["workers_replaced"] == 0


def test_run_campaign_with_pool_is_bit_identical():
    workload = build_workload("sam-ct", inputs=2, seed=3)
    serial = run_campaign(workload, SMALL_BOOM, cache=None,
                          warmup_insts=DEFAULT_WARMUP_INSTS)
    with WorkerPool(2) as pool:
        pooled = run_campaign(workload, SMALL_BOOM, cache=None,
                              warmup_insts=DEFAULT_WARMUP_INSTS, pool=pool)
    assert campaign_signature(pooled) == campaign_signature(serial)


def test_shard_submission_preserves_task_order():
    tasks = make_tasks(4)
    with WorkerPool(3) as pool:
        future = pool.submit(tasks)
        outputs = future.result(timeout=120)
    assert [output.run_index for output in outputs] \
        == [task.run_index for task in tasks]


def test_fault_token_kills_one_worker_and_redispatches(tmp_path,
                                                       monkeypatch):
    token = tmp_path / "fault-token"
    token.write_text("boom")
    monkeypatch.setenv(FAULT_TOKEN_ENV, str(token))
    tasks = make_tasks(3)
    serial_signature = output_signature(execute_tasks(tasks, jobs=1))
    # Env is inherited at fork, so the pool must start after setenv.
    with WorkerPool(2) as pool:
        pooled = execute_tasks(tasks, pool=pool)
        stats = pool.stats()
    assert output_signature(pooled) == serial_signature
    assert not token.exists(), "the fault token should be consumed"
    assert stats["workers_replaced"] == 1
    assert stats["shards_redispatched"] >= 1
    assert stats["shards_completed"] == 3
    assert stats["workers"] == 2  # pool is back at full strength


def test_pool_survives_fault_and_keeps_working(tmp_path, monkeypatch):
    token = tmp_path / "fault-token"
    token.write_text("boom")
    monkeypatch.setenv(FAULT_TOKEN_ENV, str(token))
    tasks = make_tasks(2)
    with WorkerPool(2) as pool:
        first = execute_tasks(tasks, pool=pool)
        # Token consumed: a second round must run clean on the healed pool.
        second = execute_tasks(tasks, pool=pool)
        stats = pool.stats()
    assert output_signature(first) == output_signature(second)
    assert stats["workers_replaced"] == 1


def test_python_error_fails_shard_without_retry(monkeypatch):
    def _explode(task):
        raise ValueError(f"bad task {task.run_index}")

    monkeypatch.setattr(exec_backend, "execute_run", _explode)
    tasks = make_tasks(1)
    with WorkerPool(1) as pool:
        future = pool.submit(tasks)
        with pytest.raises(ShardExecutionError, match="bad task"):
            future.result(timeout=60)
        stats = pool.stats()
    assert stats["shards_failed"] == 1
    assert stats["shards_redispatched"] == 0
    assert stats["workers_replaced"] == 0  # the worker survived


def test_poison_shard_exhausts_redispatch_budget(monkeypatch):
    def _die(_task):
        os.kill(os.getpid(), signal.SIGKILL)

    monkeypatch.setattr(exec_backend, "execute_run", _die)
    tasks = make_tasks(1)
    with WorkerPool(1, max_redispatch=1) as pool:
        future = pool.submit(tasks)
        with pytest.raises(WorkerCrashError, match="giving up"):
            future.result(timeout=60)
        stats = pool.stats()
    assert stats["workers_replaced"] == 2  # initial dispatch + one retry
    assert stats["shards_redispatched"] == 1
    assert stats["shards_failed"] == 1


def test_submit_after_close_raises():
    pool = WorkerPool(1)
    pool.close()
    pool.close()  # idempotent
    with pytest.raises(RuntimeError, match="closed"):
        pool.submit(make_tasks(1))


def test_close_fails_pending_futures(monkeypatch):
    def _die(_task):
        os.kill(os.getpid(), signal.SIGKILL)

    monkeypatch.setattr(exec_backend, "execute_run", _die)
    # One worker, generous budget: the shard is mid-redispatch forever
    # until close(), which must fail it rather than leak a hung future.
    pool = WorkerPool(1, max_redispatch=10_000)
    future = pool.submit(make_tasks(1))
    pool.close()
    with pytest.raises(RuntimeError):
        future.result(timeout=10)


def test_execute_tasks_with_pool_and_no_tasks():
    with WorkerPool(1) as pool:
        assert execute_tasks([], pool=pool) == []
