"""Tracer tests: marker protocol, snapshot construction, timing removal."""

import pytest

from repro.trace import FEATURES, MicroarchTracer, TraceError
from repro.trace.tracer import build_feature_iteration


class FakeCore:
    """Supplies canned per-cycle rows for a single feature."""

    def __init__(self, rows):
        self._rows = list(rows)
        self._index = 0

    @property
    def rob_version(self):
        # A fresh token every cycle: the incremental tracer must resample
        # each canned row (the fake "ROB" mutates on every read).
        return self._index

    def rob_occupancy(self):
        row = self._rows[self._index]
        self._index += 1
        return row[0]


def _drive(rows, feature="ROB-OCPNCY", label=1):
    tracer = MicroarchTracer(features=[feature], keep_raw=True)
    core = FakeCore(rows)
    tracer.on_marker("roi.begin", 0, 0)
    tracer.on_marker("iter.begin", label, 0)
    for cycle, _ in enumerate(rows, start=1):
        tracer.on_cycle(core, cycle)
    tracer.on_marker("iter.end", 0, len(rows))
    tracer.on_marker("roi.end", 0, len(rows) + 1)
    return tracer


class TestMarkerProtocol:
    def test_unknown_feature_rejected(self):
        with pytest.raises(ValueError, match="unknown feature"):
            MicroarchTracer(features=["BOGUS"])

    def test_table_iv_features_default(self):
        from repro.trace import FEATURE_ORDER
        tracer = MicroarchTracer()
        assert tuple(s.feature_id for s in tracer.specs) == FEATURE_ORDER
        assert len(FEATURE_ORDER) == 16

    def test_nested_iter_begin_rejected(self):
        tracer = MicroarchTracer(features=["ROB-OCPNCY"])
        tracer.on_marker("iter.begin", 0, 0)
        with pytest.raises(TraceError, match="nested"):
            tracer.on_marker("iter.begin", 0, 1)

    def test_iter_end_without_begin_rejected(self):
        tracer = MicroarchTracer(features=["ROB-OCPNCY"])
        with pytest.raises(TraceError):
            tracer.on_marker("iter.end", 0, 0)

    def test_roi_end_inside_iteration_rejected(self):
        tracer = MicroarchTracer(features=["ROB-OCPNCY"])
        tracer.on_marker("roi.begin", 0, 0)
        tracer.on_marker("iter.begin", 0, 0)
        with pytest.raises(TraceError):
            tracer.on_marker("roi.end", 0, 1)

    def test_iterations_outside_roi_are_ignored(self):
        tracer = MicroarchTracer(features=["ROB-OCPNCY"])
        tracer.on_marker("roi.begin", 0, 0)
        tracer.on_marker("roi.end", 0, 1)
        tracer.on_marker("iter.begin", 3, 2)
        tracer.on_marker("iter.end", 0, 3)
        assert tracer.iterations == []

    def test_sampling_only_inside_iterations(self):
        tracer = MicroarchTracer(features=["ROB-OCPNCY"])
        core = FakeCore([(1,), (2,)])
        tracer.on_cycle(core, 1)  # outside any iteration
        assert tracer.cycles_sampled == 0


class TestSnapshots:
    def test_label_and_cycles_recorded(self):
        tracer = _drive([(1,), (2,), (3,)], label=7)
        record = tracer.iterations[0]
        assert record.label == 7
        assert record.cycles == 3
        assert tracer.labels() == [7]
        assert tracer.iteration_cycle_counts() == [3]

    def test_identical_rows_hash_equal(self):
        a = _drive([(1,), (2,)]).iterations[0].features["ROB-OCPNCY"]
        b = _drive([(1,), (2,)]).iterations[0].features["ROB-OCPNCY"]
        assert a.snapshot_hash == b.snapshot_hash

    def test_different_rows_hash_differently(self):
        a = _drive([(1,), (2,)]).iterations[0].features["ROB-OCPNCY"]
        b = _drive([(1,), (3,)]).iterations[0].features["ROB-OCPNCY"]
        assert a.snapshot_hash != b.snapshot_hash

    def test_timing_stretch_changes_hash_but_not_notiming(self):
        fast = _drive([(1,), (2,)]).iterations[0].features["ROB-OCPNCY"]
        slow = _drive([(1,), (1,), (1,), (2,), (2,)]) \
            .iterations[0].features["ROB-OCPNCY"]
        assert fast.snapshot_hash != slow.snapshot_hash
        assert fast.snapshot_hash_notiming == slow.snapshot_hash_notiming

    def test_values_and_order(self):
        data = _drive([(0,), (5,), (5,), (9,), (5,)]) \
            .iterations[0].features["ROB-OCPNCY"]
        assert data.values == frozenset({5, 9})
        assert data.order == (5, 9)

    def test_raw_rows_kept_only_on_request(self):
        with_raw = _drive([(1,), (2,)]).iterations[0].features["ROB-OCPNCY"]
        assert with_raw.rows == ((1,), (2,))
        tracer = MicroarchTracer(features=["ROB-OCPNCY"])
        core = FakeCore([(1,)])
        tracer.on_marker("iter.begin", 0, 0)
        tracer.on_cycle(core, 1)
        tracer.on_marker("iter.end", 0, 1)
        assert tracer.iterations[0].features["ROB-OCPNCY"].rows is None


class TestBuildFeatureIteration:
    def test_empty_rows(self):
        data = build_feature_iteration([])
        assert data.values == frozenset()
        assert data.order == ()

    def test_column_consolidation_removes_duration(self):
        # Value A occupies column 0 for 3 cycles vs 1 cycle: same no-timing.
        short = build_feature_iteration([(7, 0), (7, 8)])
        long = build_feature_iteration([(7, 0), (7, 0), (7, 8), (7, 8)])
        assert short.snapshot_hash_notiming == long.snapshot_hash_notiming

    def test_column_consolidation_keeps_per_column_order(self):
        ab = build_feature_iteration([(1, 0), (2, 0)])
        ba = build_feature_iteration([(2, 0), (1, 0)])
        assert ab.snapshot_hash_notiming != ba.snapshot_hash_notiming

    def test_column_content_difference_survives_consolidation(self):
        """Entry sharing (fast bypass) stays visible with timing removed."""
        shared = build_feature_iteration([(0x10, 0x24)])
        split = build_feature_iteration([(0x10, 0x20), (0x10, 0x24)])
        assert shared.snapshot_hash_notiming != split.snapshot_hash_notiming

    def test_ragged_rows_fall_back_to_row_dedup(self):
        data = build_feature_iteration([(1,), (1, 2), (1, 2)])
        stretched = build_feature_iteration([(1,), (1,), (1, 2)])
        assert data.snapshot_hash_notiming == stretched.snapshot_hash_notiming
