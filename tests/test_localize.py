"""Leakage localization: temporal scan, attribution, and the full phase-2
flow.

Synthetic-record tests pin the scan/attribution algorithms against known
ground truth; the e2e tests assert the acceptance behavior on the memcmp
case studies (early-exit localizes to the compare/branch instructions,
the branchless constant-time variant localizes nothing); differential
tests hold parallel execution and cache replay to bit-identical
localization output.
"""

import json

import pytest

from repro.cli import main
from repro.localize import (
    ITERATION_ENDED,
    CycleWindow,
    LocalizationError,
    attribute_window,
    localization_to_dict,
    localize_campaign,
    offset_columns,
    render_localization,
    temporal_scan,
)
from repro.sampler import MicroSampler, TraceCache, run_campaign
from repro.trace.tracer import FeatureIteration, IterationRecord
from repro.uarch import MEGA_BOOM
from repro.workloads.memcmp import make_ct_memcmp_safe, make_early_exit_memcmp

from tests.golden import (
    GOLDEN_TOLERANCE,
    load_golden,
    localization_case,
    localization_to_golden,
)

FEATURE = "ROB-PC"


def make_record(index, label, digests, commits=None, start_cycle=1000):
    feature = FeatureIteration(
        snapshot_hash=0, snapshot_hash_notiming=0,
        values=frozenset(), order=(),
        cycle_digests=tuple(digests),
    )
    return IterationRecord(
        index=index, label=label,
        start_cycle=start_cycle, end_cycle=start_cycle + len(digests),
        features={FEATURE: feature},
        commits=None if commits is None else tuple(
            (start_cycle + offset, pc, mnemonic)
            for offset, pc, mnemonic in commits),
    )


def synthetic_records(n=24, length=6, leak_offsets=(2, 3, 4)):
    """Alternating labels; digests separate the classes at leak_offsets."""
    records = []
    for i in range(n):
        label = i % 2
        digests = [7] * length
        for offset in leak_offsets:
            digests[offset] = 11 if label else 13
        records.append(make_record(i, label, digests))
    return records


class TestTemporalScan:
    def test_flags_exactly_the_leaking_offsets(self):
        scan = temporal_scan(synthetic_records(), FEATURE)
        assert scan.flagged_offsets == (2, 3, 4)
        assert scan.window == CycleWindow(2, 4)
        assert scan.window.cycles == 3
        assert scan.n_offsets == 6
        assert scan.peak.offset in (2, 3, 4)
        for offset in (0, 1, 5):
            assert scan.offsets[offset].association.cramers_v == 0.0

    def test_clean_records_have_no_window(self):
        records = synthetic_records(leak_offsets=())
        scan = temporal_scan(records, FEATURE)
        assert scan.flagged_offsets == ()
        assert scan.window is None
        assert scan.peak is None

    def test_engines_agree(self):
        records = synthetic_records()
        numpy_scan = temporal_scan(records, FEATURE, engine="numpy")
        python_scan = temporal_scan(records, FEATURE, engine="python")
        assert numpy_scan.flagged_offsets == python_scan.flagged_offsets
        assert numpy_scan.window == python_scan.window
        for a, b in zip(numpy_scan.offsets, python_scan.offsets):
            assert a.association.cramers_v == \
                pytest.approx(b.association.cramers_v, abs=GOLDEN_TOLERANCE)
            assert a.association.p_value == \
                pytest.approx(b.association.p_value, abs=GOLDEN_TOLERANCE)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            temporal_scan(synthetic_records(), FEATURE, engine="rust")

    def test_class_correlated_length_leaks_at_tail(self):
        # Label-0 iterations run 6 cycles, label-1 only 4: the sentinel
        # padding turns the length difference into tail-offset leakage
        # instead of silently shrinking the sample.
        records = [
            make_record(i, i % 2, [7] * (4 if i % 2 else 6))
            for i in range(24)
        ]
        labels, columns = offset_columns(records, FEATURE)
        assert columns[4].count(ITERATION_ENDED) == 12
        scan = temporal_scan(records, FEATURE)
        assert scan.flagged_offsets == (4, 5)
        assert scan.window == CycleWindow(4, 5)

    def test_missing_digests_raise(self):
        record = make_record(0, 0, [7, 7])
        record.features[FEATURE] = FeatureIteration(
            snapshot_hash=0, snapshot_hash_notiming=0,
            values=frozenset(), order=())
        with pytest.raises(LocalizationError, match="keep_raw"):
            temporal_scan([record], FEATURE)


class TestAttribution:
    def test_secret_dependent_pc_ranks_first(self):
        window = CycleWindow(2, 4)
        records = []
        for i in range(24):
            label = i % 2
            commits = [(2, 0x200, "addi")]  # class-independent
            if label:
                commits.append((3, 0x100, "bne"))  # only for label 1
            commits.append((9, 0x300, "ld"))  # outside the window
            records.append(make_record(i, label, [7] * 6, commits=commits))
        result = attribute_window(records, FEATURE, window)
        assert [s.pc for s in result.scores[:2]] == [0x100, 0x200]
        top = result.scores[0]
        assert top.mnemonic == "bne"
        assert top.mi_bits == pytest.approx(1.0)
        assert top.p_value < 0.01
        assert top.iterations_active == 12
        # The class-independent PC carries no information.
        assert result.scores[1].mi_bits == pytest.approx(0.0)
        # The out-of-window PC is never scored.
        assert all(s.pc != 0x300 for s in result.scores)
        significant = result.significant(alpha=0.01)
        assert [s.pc for s in significant] == [0x100]

    def test_deterministic_across_calls(self):
        window = CycleWindow(0, 5)
        records = [
            make_record(i, i % 2, [7] * 6,
                        commits=[(i % 4, 0x100 + 4 * (i % 3), "addi")])
            for i in range(16)
        ]
        a = attribute_window(records, FEATURE, window, seed=0)
        b = attribute_window(records, FEATURE, window, seed=0)
        assert [(s.pc, s.mi_bits, s.p_value) for s in a.scores] == \
               [(s.pc, s.mi_bits, s.p_value) for s in b.scores]

    def test_missing_commit_log_raises(self):
        records = [make_record(0, 0, [7] * 4)]
        with pytest.raises(LocalizationError, match="log_commits"):
            attribute_window(records, FEATURE, CycleWindow(0, 3))


@pytest.fixture(scope="module")
def ee_workload():
    return make_early_exit_memcmp(n_pairs=8, seed=2, n_runs=2)


@pytest.fixture(scope="module")
def ee_campaign(ee_workload):
    return run_campaign(ee_workload, MEGA_BOOM, features=(FEATURE,),
                        keep_raw=True, log_commits=True)


class TestEndToEnd:
    def test_early_exit_memcmp_localizes_to_compare_branch(self, ee_workload,
                                                           ee_campaign):
        report = localize_campaign(ee_campaign, (FEATURE,))
        assert report.leakage_localized
        unit = report.units[FEATURE]
        assert unit.scan.window is not None
        significant = unit.attribution.significant(alpha=0.01)
        assert significant, "no instruction passed the p < 0.01 gate"
        mnemonics = {s.mnemonic for s in significant}
        # The early-exit branch and its compare must be attributed.
        assert "bne" in mnemonics
        assert "sub" in mnemonics
        # ... and the flagged PCs live inside memcmp_ee, not the driver.
        program = ee_workload.assemble()
        memcmp_pc = program.symbols["memcmp_ee"]
        branch_pcs = [s.pc for s in significant if s.mnemonic == "bne"]
        assert all(pc >= memcmp_pc for pc in branch_pcs)
        assert all(s.p_value < 0.01 for s in significant)

    def test_constant_time_variant_has_no_window(self):
        workload = make_ct_memcmp_safe(n_pairs=8, seed=2, n_runs=2)
        sampler = MicroSampler(cache=None)
        detection = sampler.analyze(workload)
        assert not detection.leakage_detected
        # Phase 2 with no targets is an empty report ...
        report = sampler.localize(workload, report=detection)
        assert report.units == {}
        assert not report.leakage_localized
        # ... and even a forced scan of a unit finds no leaking window.
        forced = sampler.localize(workload, features=(FEATURE,))
        assert forced.units[FEATURE].scan.window is None
        assert not forced.leakage_localized

    def test_scan_engines_agree_on_real_campaign(self, ee_campaign):
        iterations = list(ee_campaign.iterations)
        numpy_scan = temporal_scan(iterations, FEATURE, engine="numpy")
        python_scan = temporal_scan(iterations, FEATURE, engine="python")
        assert numpy_scan.flagged_offsets == python_scan.flagged_offsets
        for a, b in zip(numpy_scan.offsets, python_scan.offsets):
            assert a.association.cramers_v == \
                pytest.approx(b.association.cramers_v, abs=GOLDEN_TOLERANCE)
            assert a.association.p_value == \
                pytest.approx(b.association.p_value, abs=GOLDEN_TOLERANCE)

    def test_render_and_dict(self, ee_workload, ee_campaign):
        report = localize_campaign(ee_campaign, (FEATURE,))
        text = render_localization(report, program=ee_workload.assemble())
        assert "LEAKAGE LOCALIZED" in text
        assert "<==" in text
        assert "bne" in text
        payload = localization_to_dict(report)
        assert payload["leakage_localized"] is True
        assert payload["units"][FEATURE]["window"] is not None
        json.dumps(payload)  # JSON-serializable end to end


class TestParallelAndCache:
    def test_parallel_localization_is_bit_identical(self, ee_workload,
                                                    ee_campaign):
        parallel = run_campaign(ee_workload, MEGA_BOOM, features=(FEATURE,),
                                keep_raw=True, log_commits=True, jobs=4)
        for a, b in zip(ee_campaign.iterations, parallel.iterations):
            assert a.commits == b.commits
            assert a.features[FEATURE].cycle_digests == \
                b.features[FEATURE].cycle_digests
        serial_dict = localization_to_dict(
            localize_campaign(ee_campaign, (FEATURE,)))
        parallel_dict = localization_to_dict(
            localize_campaign(parallel, (FEATURE,)))
        serial_dict["timings_seconds"] = parallel_dict["timings_seconds"] = {}
        assert serial_dict == parallel_dict

    def test_cache_replay_localizes_identically(self, ee_workload, tmp_path):
        cache = TraceCache(tmp_path / "cache")
        sampler = MicroSampler(cache=cache)
        cold = sampler.localize(ee_workload, features=(FEATURE,))
        assert cache.stores > 0 and cache.hits == 0
        warm = sampler.localize(ee_workload, features=(FEATURE,))
        assert cache.hits >= len(ee_workload.inputs)
        cold_dict = localization_to_dict(cold)
        warm_dict = localization_to_dict(warm)
        cold_dict["timings_seconds"] = warm_dict["timings_seconds"] = {}
        assert cold_dict == warm_dict


class TestGolden:
    def test_localization_matches_fixture(self):
        workload, config, features = localization_case()
        sampler = MicroSampler(config, engine="python", cache=None)
        fresh = localization_to_golden(
            sampler.localize(workload, features=features))
        golden = load_golden("localize_ee_memcmp")
        assert sorted(fresh["localized_units"]) == golden["localized_units"]
        assert set(fresh["units"]) == set(golden["units"])
        for feature_id, pinned in golden["units"].items():
            unit = fresh["units"][feature_id]
            assert unit["n_offsets"] == pinned["n_offsets"]
            assert unit["flagged_offsets"] == pinned["flagged_offsets"]
            assert unit["window"] == pinned["window"]
            assert unit["peak"]["offset"] == pinned["peak"]["offset"]
            assert unit["peak"]["cramers_v"] == pytest.approx(
                pinned["peak"]["cramers_v"], abs=GOLDEN_TOLERANCE)
            assert unit["peak"]["p_value"] == pytest.approx(
                pinned["peak"]["p_value"], abs=GOLDEN_TOLERANCE)
            assert len(unit["instructions"]) == len(pinned["instructions"])
            for fresh_i, pinned_i in zip(unit["instructions"],
                                         pinned["instructions"]):
                assert fresh_i["pc"] == pinned_i["pc"]
                assert fresh_i["mnemonic"] == pinned_i["mnemonic"]
                assert fresh_i["mi_bits"] == pytest.approx(
                    pinned_i["mi_bits"], abs=GOLDEN_TOLERANCE)
                assert fresh_i["p_value"] == pytest.approx(
                    pinned_i["p_value"], abs=GOLDEN_TOLERANCE)


class TestMeasureMI:
    def test_mi_column_in_report(self):
        workload = make_early_exit_memcmp(n_pairs=8, seed=2, n_runs=2)
        sampler = MicroSampler(features=(FEATURE,), cache=None,
                               measure_mi=True, mi_permutations=49)
        report = sampler.analyze(workload)
        unit = report.units[FEATURE]
        assert unit.mi is not None
        assert unit.mi.mutual_information_bits > 0.5
        assert unit.mi.p_value < 0.05
        from repro.sampler.report import render_report, report_to_dict

        text = render_report(report)
        assert "MI bits" in text
        payload = report_to_dict(report)
        assert payload["units"][FEATURE]["mi"]["p_value"] < 0.05

    def test_mi_off_by_default(self):
        workload = make_early_exit_memcmp(n_pairs=4, seed=2, n_runs=1)
        report = MicroSampler(features=(FEATURE,),
                              cache=None).analyze(workload)
        assert report.units[FEATURE].mi is None
        from repro.sampler.report import render_report

        assert "MI bits" not in render_report(report)


class TestCLI:
    def test_localize_exits_one_on_leak(self, capsys):
        rc = main(["localize", "ee-mem-cmp", "--inputs", "2",
                   "--features", FEATURE, "--permutations", "49",
                   "--no-cache"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "LEAKAGE LOCALIZED" in out
        assert "bne" in out

    def test_localize_clean_exits_zero(self, capsys):
        rc = main(["localize", "ct-mem-cmp-safe", "--inputs", "2",
                   "--features", FEATURE, "--permutations", "49",
                   "--no-cache"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "No cycle window passed the localization gate" in out

    def test_localize_json(self, capsys):
        # 199 permutations so the best achievable p (0.005) clears the
        # 0.01 significance gate recorded in the JSON output.
        rc = main(["localize", "ee-mem-cmp", "--inputs", "2",
                   "--features", FEATURE, "--permutations", "199",
                   "--engine", "python", "--no-cache", "--json"])
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["leakage_localized"] is True
        assert payload["units"][FEATURE]["window"] is not None
        assert any(i["significant"] and i["mnemonic"] == "bne"
                   for i in payload["units"][FEATURE]["instructions"])

    def test_analyze_localize_flag(self, capsys):
        rc = main(["analyze", "ee-mem-cmp", "--inputs", "2",
                   "--no-timing-removed", "--localize", "--no-cache"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "LEAKAGE DETECTED" in out
        assert "LEAKAGE LOCALIZED" in out

    def test_analyze_mi_flag(self, capsys):
        rc = main(["analyze", "ct-mem-cmp-safe", "--inputs", "2",
                   "--no-timing-removed", "--mi", "--no-cache"])
        assert rc == 0
        assert "MI bits" in capsys.readouterr().out
