"""Unit and property tests for the RV64IM functional semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.semantics import (
    MASK64,
    branch_taken,
    compute_alu,
    sext32,
    to_signed,
    to_unsigned,
)

U64 = st.integers(min_value=0, max_value=MASK64)


def test_to_signed_basic():
    assert to_signed(0) == 0
    assert to_signed(MASK64) == -1
    assert to_signed(1 << 63) == -(1 << 63)
    assert to_signed(0x7FFFFFFFFFFFFFFF) == (1 << 63) - 1


def test_to_signed_narrow_widths():
    assert to_signed(0xFF, 8) == -1
    assert to_signed(0x7F, 8) == 127
    assert to_signed(0x80, 8) == -128


def test_sext32():
    assert sext32(0x80000000) == 0xFFFFFFFF80000000
    assert sext32(0x7FFFFFFF) == 0x7FFFFFFF
    assert sext32(0x1_00000000) == 0  # upper bits ignored


@pytest.mark.parametrize("op,a,b,expected", [
    ("add", 1, 2, 3),
    ("add", MASK64, 1, 0),
    ("sub", 0, 1, MASK64),
    ("and", 0xF0F0, 0xFF00, 0xF000),
    ("or", 0xF0F0, 0x0F0F, 0xFFFF),
    ("xor", 0xFFFF, 0x00FF, 0xFF00),
    ("sll", 1, 63, 1 << 63),
    ("sll", 1, 64, 1),  # shift amount masked to 6 bits
    ("srl", 1 << 63, 63, 1),
    ("sra", 1 << 63, 63, MASK64),
    ("slt", to_unsigned(-1), 0, 1),
    ("slt", 0, to_unsigned(-1), 0),
    ("sltu", to_unsigned(-1), 0, 0),
    ("sltu", 0, 1, 1),
])
def test_alu_ops(op, a, b, expected):
    assert compute_alu(op, a, b) == expected


@pytest.mark.parametrize("op,a,b,expected", [
    ("addw", 0x7FFFFFFF, 1, 0xFFFFFFFF80000000),
    ("subw", 0, 1, MASK64),
    ("sllw", 1, 31, 0xFFFFFFFF80000000),
    ("srlw", 0x80000000, 31, 1),
    ("sraw", 0x80000000, 31, MASK64),
])
def test_w_ops_sign_extend(op, a, b, expected):
    assert compute_alu(op, a, b) == expected


def test_mul_family():
    assert compute_alu("mul", 3, 4) == 12
    assert compute_alu("mul", MASK64, 2) == MASK64 - 1  # -1 * 2 = -2
    assert compute_alu("mulh", to_unsigned(-1), to_unsigned(-1)) == 0
    assert compute_alu("mulhu", MASK64, MASK64) == MASK64 - 1
    # mulhsu: signed * unsigned
    assert compute_alu("mulhsu", to_unsigned(-1), 2) == MASK64
    assert compute_alu("mulw", 0x10000, 0x10000) == 0  # low 32 bits are 0


def test_div_truncates_toward_zero():
    assert compute_alu("div", to_unsigned(-7), 2) == to_unsigned(-3)
    assert compute_alu("rem", to_unsigned(-7), 2) == to_unsigned(-1)
    assert compute_alu("div", 7, to_unsigned(-2)) == to_unsigned(-3)
    assert compute_alu("rem", 7, to_unsigned(-2)) == 1


def test_div_by_zero_riscv_semantics():
    assert compute_alu("div", 42, 0) == MASK64       # -1
    assert compute_alu("divu", 42, 0) == MASK64      # all ones
    assert compute_alu("rem", 42, 0) == 42
    assert compute_alu("remu", 42, 0) == 42


def test_div_overflow_case():
    int_min = 1 << 63
    assert compute_alu("div", int_min, MASK64) == int_min
    assert compute_alu("rem", int_min, MASK64) == 0


def test_divw_family():
    assert compute_alu("divw", to_unsigned(-8, 32), 2) == to_unsigned(-4)
    assert compute_alu("divuw", 8, 2) == 4
    assert compute_alu("remw", to_unsigned(-7, 32), 2) == to_unsigned(-1)
    assert compute_alu("remuw", 7, 2) == 1
    int_min32 = 0x80000000
    assert compute_alu("divw", int_min32, 0xFFFFFFFF) == sext32(int_min32)


def test_lui_auipc_semantics():
    assert compute_alu("lui", 0, 0x12345000) == 0x12345000
    assert compute_alu("auipc", 0x1000, 0x2000) == 0x3000


@pytest.mark.parametrize("op,a,b,expected", [
    ("beq", 5, 5, True),
    ("beq", 5, 6, False),
    ("bne", 5, 6, True),
    ("blt", to_unsigned(-1), 0, True),
    ("bge", 0, to_unsigned(-1), True),
    ("bltu", to_unsigned(-1), 0, False),
    ("bgeu", to_unsigned(-1), 0, True),
])
def test_branch_conditions(op, a, b, expected):
    assert branch_taken(op, a, b) is expected


@given(U64, U64)
def test_add_sub_inverse(a, b):
    assert compute_alu("sub", compute_alu("add", a, b), b) == a


@given(U64, U64)
def test_div_rem_identity(a, b):
    """RISC-V guarantees a == div(a,b)*b + rem(a,b) (mod 2^64)."""
    q = compute_alu("div", a, b)
    r = compute_alu("rem", a, b)
    assert (to_signed(q) * to_signed(b) + to_signed(r)) & MASK64 == a


@given(U64, U64)
def test_divu_remu_identity(a, b):
    q = compute_alu("divu", a, b)
    r = compute_alu("remu", a, b)
    if b != 0:
        assert (q * b + r) & MASK64 == a
        assert r < b


@given(U64, U64)
def test_slt_consistent_with_branch(a, b):
    assert compute_alu("slt", a, b) == int(branch_taken("blt", a, b))
    assert compute_alu("sltu", a, b) == int(branch_taken("bltu", a, b))


@given(U64)
def test_xor_self_inverse(a):
    assert compute_alu("xor", compute_alu("xor", a, 0xDEADBEEF), 0xDEADBEEF) == a


@given(U64, st.integers(min_value=0, max_value=63))
def test_shift_roundtrip_preserves_low_bits(a, s):
    shifted = compute_alu("sll", a, s)
    back = compute_alu("srl", shifted, s)
    assert back == (a << s & MASK64) >> s


@given(U64, U64)
def test_results_always_fit_64_bits(a, b):
    for op in ("add", "sub", "mul", "mulh", "div", "rem", "sra", "addw",
               "divw", "remu", "sltu"):
        assert 0 <= compute_alu(op, a, b) <= MASK64
