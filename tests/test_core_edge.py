"""Edge-case pipeline scenarios: resource exhaustion, deep speculation,
serialization corners."""

import pytest

from repro.isa import Interpreter, assemble
from repro.uarch import MEDIUM_BOOM, MEGA_BOOM, SMALL_BOOM, Core


def _run_both(source, config):
    program = assemble(source, entry="main")
    ref = Interpreter(program).run()
    core = Core(program, config)
    result = core.run(max_cycles=500_000)
    assert result.exit_code == ref.exit_code
    assert result.stats.committed == ref.steps
    return core, result


def test_medium_config_runs(sum_program):
    core = Core(sum_program, MEDIUM_BOOM)
    assert core.run().exit_code == 62


def test_long_dependency_chain_fills_rob():
    """A serial chain behind a slow divide must back up cleanly."""
    body = "\n".join("    addi t0, t0, 1" for _ in range(100))
    source = f"""
.text
main:
    li t0, 1000
    li t1, 7
    div t0, t0, t1
{body}
    mv a0, t0
    li a7, 93
    ecall
"""
    core, result = _run_both(source, SMALL_BOOM)
    assert result.exit_code == 142 + 100


def test_store_queue_exhaustion():
    """More in-flight stores than STQ entries: dispatch must stall, not drop."""
    stores = "\n".join(f"    sb t0, {i}(s0)" for i in range(24))
    source = f"""
.data
buf: .zero 32
.text
main:
    la s0, buf
    li t0, 0x5a
{stores}
    lbu a0, 23(s0)
    li a7, 93
    ecall
"""
    _, result = _run_both(source, SMALL_BOOM)  # STQ = 8 entries
    assert result.exit_code == 0x5A


def test_load_queue_exhaustion():
    loads = "\n".join(f"    lbu t{1 + (i % 3)}, {i % 16}(s0)"
                      for i in range(24))
    source = f"""
.data
buf: .zero 32
.text
main:
    la s0, buf
{loads}
    li a0, 0
    li a7, 93
    ecall
"""
    _run_both(source, SMALL_BOOM)


def test_deeply_nested_calls():
    source = """
.text
main:
    li a0, 0
    call f1
    li a7, 93
    ecall
f1:
    addi sp, sp, -16
    sd ra, 8(sp)
    addi a0, a0, 1
    call f2
    ld ra, 8(sp)
    addi sp, sp, 16
    ret
f2:
    addi sp, sp, -16
    sd ra, 8(sp)
    addi a0, a0, 1
    call f3
    ld ra, 8(sp)
    addi sp, sp, 16
    ret
f3:
    addi a0, a0, 1
    ret
"""
    _, result = _run_both(source, MEGA_BOOM)
    assert result.exit_code == 3


def test_return_stack_deeper_than_ras():
    """Recursion deeper than the 8-entry RAS: mispredicted returns recover."""
    source = """
.text
main:
    li a0, 14
    li a1, 0
    call rec
    mv a0, a1
    li a7, 93
    ecall
rec:
    addi sp, sp, -16
    sd ra, 8(sp)
    addi a1, a1, 1
    beqz a0, done
    addi a0, a0, -1
    call rec
done:
    ld ra, 8(sp)
    addi sp, sp, 16
    ret
"""
    core, result = _run_both(source, MEGA_BOOM)
    assert result.exit_code == 15


def test_alternating_branch_pattern():
    """A strictly alternating branch defeats 2-bit counters; recovery must
    stay architecturally invisible."""
    source = """
.text
main:
    li t0, 0
    li t1, 0
    li t2, 40
loop:
    andi t3, t0, 1
    beqz t3, even
    addi t1, t1, 2
    j next
even:
    addi t1, t1, 1
next:
    addi t0, t0, 1
    blt t0, t2, loop
    mv a0, t1
    li a7, 93
    ecall
"""
    core, result = _run_both(source, MEGA_BOOM)
    assert result.exit_code == 60
    assert result.stats.mispredicts > 5


def test_back_to_back_markers():
    source = """
.text
main:
    roi.begin
    li t0, 1
    iter.begin t0
    iter.end
    iter.begin t0
    iter.end
    roi.end
    li a0, 0
    li a7, 93
    ecall
"""
    from repro.trace import MicroarchTracer
    program = assemble(source, entry="main")
    tracer = MicroarchTracer(features=["ROB-OCPNCY"])
    core = Core(program, MEGA_BOOM, tracer=tracer)
    assert core.run().exit_code == 0
    assert len(tracer.iterations) == 2


def test_div_by_zero_on_core():
    source = """
.text
main:
    li t0, 42
    li t1, 0
    divu a0, t0, t1
    sltiu a0, a0, 1
    xori a0, a0, 1    # a0 = 1 iff divu returned all-ones... invert below
    li a7, 93
    ecall
"""
    # divu by zero returns all ones (not zero) -> sltiu gives 0 -> xori -> 1
    _, result = _run_both(source, MEGA_BOOM)
    assert result.exit_code == 1


def test_fetch_across_cache_lines():
    """A hot loop larger than one I-cache line exercises fetch refills."""
    body = "\n".join("    addi t1, t1, 1" for _ in range(40))
    source = f"""
.text
main:
    li t0, 10
    li t1, 0
loop:
{body}
    addi t0, t0, -1
    bgtz t0, loop
    mv a0, t1
    li a7, 93
    ecall
"""
    _, result = _run_both(source, SMALL_BOOM)
    assert result.exit_code == 400


def test_jalr_to_unpredicted_target_stalls_and_resumes():
    source = """
.data
fptr: .dword 0
.text
main:
    la t0, target
    la t1, fptr
    sd t0, 0(t1)
    ld t2, 0(t1)
    jalr ra, t2, 0     # no BTB entry on first encounter: fetch stalls
    jalr ra, t2, 0     # second encounter: BTB predicts
    li a7, 93
    ecall
target:
    addi a0, a0, 21
    ret
"""
    _, result = _run_both(source, MEGA_BOOM)
    assert result.exit_code == 42


def test_wrong_path_store_never_reaches_memory():
    source = """
.data
guard: .dword 1
canary: .dword 0x77
.text
main:
    la t0, guard
    ld t1, 0(t0)
    la t2, canary
    bnez t1, skip      # always taken; fall-through is wrong path
    li t3, 0
    sd t3, 0(t2)       # must never become architectural
skip:
    ld a0, 0(t2)
    li a7, 93
    ecall
"""
    core, result = _run_both(source, MEGA_BOOM)
    assert result.exit_code == 0x77
    canary = core.program.symbols["canary"]
    value = int.from_bytes(core.memory.read_bytes(canary, 8), "little")
    assert value == 0x77
