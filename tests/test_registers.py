"""Unit tests for register-name handling."""

import pytest

from repro.isa import ABI_NAMES, NUM_REGS, parse_register, register_name


def test_abi_names_count():
    assert len(ABI_NAMES) == NUM_REGS == 32


@pytest.mark.parametrize("name,num", [
    ("zero", 0), ("ra", 1), ("sp", 2), ("gp", 3), ("tp", 4),
    ("t0", 5), ("t2", 7), ("s0", 8), ("fp", 8), ("s1", 9),
    ("a0", 10), ("a7", 17), ("s2", 18), ("s11", 27),
    ("t3", 28), ("t6", 31),
])
def test_parse_abi_names(name, num):
    assert parse_register(name) == num


@pytest.mark.parametrize("num", range(32))
def test_parse_x_names(num):
    assert parse_register(f"x{num}") == num


def test_parse_is_case_insensitive_and_strips():
    assert parse_register(" A0 ") == 10
    assert parse_register("X5") == 5


@pytest.mark.parametrize("bad", ["x32", "b0", "", "a8", "t7", "s12", "x-1"])
def test_parse_rejects_bad_names(bad):
    with pytest.raises(ValueError):
        parse_register(bad)


def test_register_name_roundtrip():
    for num in range(32):
        assert parse_register(register_name(num)) == num


def test_register_name_out_of_range():
    with pytest.raises(ValueError):
        register_name(32)
    with pytest.raises(ValueError):
        register_name(-1)
