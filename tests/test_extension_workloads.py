"""Tests for the Spectre litmus, S-box cipher and extra tracked features."""

import struct

import pytest

from repro.baselines import run_data_tool
from repro.isa import Interpreter
from repro.sampler import MicroSampler
from repro.sampler.runner import patch_program
from repro.trace import FEATURE_ORDER, FEATURES, MicroarchTracer
from repro.trace.extra_features import EXTRA_FEATURE_IDS, install_extra_features
from repro.trace.features import FeatureSpec, register_feature, unregister_feature
from repro.uarch import MEGA_BOOM, Core
from repro.workloads.cipher import (
    expected_sbox_results,
    make_sbox_ct,
    make_sbox_lookup,
    sbox_table,
)
from repro.workloads.spectre import make_spectre_v1


class TestSpectreLitmus:
    @pytest.fixture(scope="class")
    def report(self):
        return MicroSampler(MEGA_BOOM).analyze(
            make_spectre_v1(n_iters=16, n_runs=4))

    def test_architecturally_benign(self):
        workload = make_spectre_v1(n_iters=8, n_runs=1)
        program = patch_program(workload.assemble(), workload.inputs[0])
        result = Interpreter(program).run()
        assert result.exit_code == 0

    def test_software_tool_sees_nothing(self):
        report = run_data_tool(make_spectre_v1(n_iters=16, n_runs=2))
        assert not report.leakage_detected
        # The bounds check architecturally fails: no address is unique to a
        # class, and nothing reaches significance.
        assert not report.control_flow.significant
        assert not any(report.unique_control_flow.values())
        assert not any(report.unique_memory.values())

    def test_microsampler_flags_cache_traffic(self, report):
        assert "Cache-ADDR" in report.leaky_units
        assert "LQ-ADDR" in report.leaky_units

    def test_uniqueness_pinpoints_probe_lines(self, report):
        workload = make_spectre_v1(n_iters=16, n_runs=4)
        probe = workload.assemble().symbols["probe"]
        cause = report.units["Cache-ADDR"].root_cause
        unique0 = cause.uniqueness.unique_values[0]
        unique1 = cause.uniqueness.unique_values[1]
        assert probe + 64 * 8 in unique0   # planted secret 8
        assert probe + 64 * 9 in unique1   # planted secret 9


class TestSboxCipher:
    @pytest.mark.parametrize("make", [make_sbox_lookup, make_sbox_ct],
                             ids=["lookup", "ct"])
    def test_functional(self, make):
        workload = make(n_sets=5, n_runs=2)
        program = workload.assemble()
        for patches, expected in zip(workload.inputs,
                                     expected_sbox_results(workload)):
            patched = patch_program(program, patches)
            interp = Interpreter(patched)
            assert interp.run().exit_code == 0
            got = list(struct.unpack(
                "<5Q", interp.memory.read_bytes(patched.symbols["results"],
                                                40)))
            assert got == expected

    def test_sbox_is_a_permutation(self):
        table = sbox_table()
        assert sorted(table) == list(range(64))

    def test_lookup_version_leaks_addresses(self):
        report = MicroSampler(MEGA_BOOM).analyze(
            make_sbox_lookup(n_sets=16, n_runs=4))
        assert "LQ-ADDR" in report.leaky_units
        assert "Cache-ADDR" in report.leaky_units

    def test_ct_version_is_clean(self):
        report = MicroSampler(MEGA_BOOM).analyze(
            make_sbox_ct(n_sets=16, n_runs=4))
        assert not report.leakage_detected


class TestFeatureRegistry:
    def test_install_extra_features_idempotent(self):
        ids = install_extra_features()
        ids_again = install_extra_features()
        assert ids == ids_again == EXTRA_FEATURE_IDS
        for feature_id in ids:
            assert feature_id in FEATURES
            assert feature_id not in FEATURE_ORDER

    def test_duplicate_registration_rejected(self):
        install_extra_features()
        with pytest.raises(ValueError, match="already registered"):
            register_feature(FEATURES["BP-GHR"])

    def test_table_iv_features_protected(self):
        with pytest.raises(ValueError, match="cannot unregister"):
            unregister_feature("SQ-ADDR")

    def test_unregister_extension(self):
        register_feature(FeatureSpec("X-TEST", "test", "test",
                                     lambda core: (0,)))
        assert "X-TEST" in FEATURES
        unregister_feature("X-TEST")
        assert "X-TEST" not in FEATURES
        unregister_feature("X-TEST")  # idempotent

    def test_extra_features_sample_from_live_core(self, sum_program):
        install_extra_features()
        tracer = MicroarchTracer(features=["BP-GHR", "FETCHBUF-PC",
                                           "FREELIST-OCPNCY"])
        # sum_program has no markers; drive the tracer's sampling manually
        # through a synthetic iteration window.
        core = Core(sum_program, MEGA_BOOM, tracer=tracer)
        tracer.on_marker("iter.begin", 0, 0)
        while not core.halted:
            core.step()
        tracer.on_marker("iter.end", 0, core.cycle)
        record = tracer.iterations[0]
        ghr = record.features["BP-GHR"]
        assert len(ghr.values) >= 1  # history moved during the loop
        freelist = record.features["FREELIST-OCPNCY"]
        assert all(0 < v <= MEGA_BOOM.int_prf_entries for v in freelist.values)

    def test_extra_feature_in_pipeline(self):
        from repro.workloads.modexp import make_sam_leaky
        install_extra_features()
        sampler = MicroSampler(
            MEGA_BOOM, features=[*FEATURE_ORDER, "BP-GHR"])
        report = sampler.analyze(make_sam_leaky(n_keys=3, seed=3))
        # The leaky SAM's secret branch imprints directly on the GHR.
        assert "BP-GHR" in report.units
        assert report.units["BP-GHR"].association.cramers_v > 0.9
