"""Taint off/on differential: the prescreen must be verdict-neutral.

The acceptance bar for the prune and rank tiers: on every bundled
workload, ``--taint on`` produces **bit-identical** verdicts (the
leakage flag, the leaky-unit set, every per-unit leaky flag) and
localization dicts to ``--taint off`` — serially, under ``jobs=4``, and
on both a cold and a warm trace cache.  Unpruned units must additionally
carry bit-identical raw statistics; pruned units collapse to the constant
empty snapshot (V=0, one category), which may differ from the off-run's
sub-threshold nuisance variation (cold-start timing artifacts) but can
never differ in verdict — a unit is only pruned when the taint engine
proved no secret-derived value reaches it, and a pruned-yet-flagged unit
would surface as ``TAINT-DISAGREE``.

Leaky workloads escalate, so nothing is pruned there and full bit-identity
is structural.
"""

from __future__ import annotations

import pytest

from repro.sampler.pipeline import MicroSampler
from repro.sampler.report import report_to_dict
from repro.sampler.trace_cache import TraceCache
from repro.uarch.config import SMALL_BOOM
from repro.workloads.chacha import make_chacha20
from repro.workloads.memcmp import (
    make_ct_memcmp_safe,
    make_early_exit_memcmp,
)
from repro.workloads.spectre import make_spectre_v1

#: Representative corners: data-only clean (prunes hard), escalated leaky
#: (prunes nothing), branchless-safe (prunes), transient-only (transient
#: walk blocks pruning).
WORKLOADS = {
    "chacha20": lambda: make_chacha20(n_keys=4, n_blocks=1, seed=3),
    "ee-mem-cmp": lambda: make_early_exit_memcmp(n_pairs=8, seed=2,
                                                 n_runs=2),
    "ct-mem-cmp-safe": lambda: make_ct_memcmp_safe(n_pairs=8, seed=2,
                                                   n_runs=2),
    "spectre-v1": lambda: make_spectre_v1(n_iters=8, n_runs=2, seed=3),
}

#: JSON keys that vary run-to-run or are additive with taint on.
_VOLATILE = ("timings_seconds", "profile", "taint")


def _verdict_view(payload: dict, pruned: set) -> dict:
    """The comparable projection of a report payload.

    Everything except the pruned units' raw statistics: per-unit leaky
    flags for all units, full association/MI/root-cause data for units
    the taint engine did not prune.  ``pruned`` comes from the taint-on
    payload and is applied to both sides of a comparison.
    """
    view = {key: value for key, value in payload.items()
            if key not in _VOLATILE}
    units = view.pop("units")
    view["unit_verdicts"] = {feature_id: unit["leaky"]
                             for feature_id, unit in units.items()}
    view["unpruned_units"] = {feature_id: unit
                              for feature_id, unit in units.items()
                              if feature_id not in pruned}
    return view


def _report(name, *, taint, jobs=1, cache=None):
    sampler = MicroSampler(SMALL_BOOM, taint=taint, jobs=jobs, cache=cache)
    return report_to_dict(sampler.analyze(WORKLOADS[name]()))


def _assert_identical(on: dict, off: dict) -> None:
    pruned = set(on.get("taint", {}).get("pruned", ()))
    assert _verdict_view(on, pruned) == _verdict_view(off, pruned)
    # Pruned units must still be verdict-clean on both sides and never
    # disagree with the statistics.
    for feature_id in pruned:
        assert not on["units"][feature_id]["leaky"]
        assert not off["units"][feature_id]["leaky"]
        assert on["taint"]["agreement"][feature_id] == "secret-free"


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_verdicts_identical_serial(name):
    off = _report(name, taint=False)
    on = _report(name, taint=True)
    assert "taint" not in off
    assert "taint" in on
    _assert_identical(on, off)


@pytest.mark.parametrize("name", ["chacha20", "ee-mem-cmp"])
def test_verdicts_identical_parallel(name):
    off = _report(name, taint=False, jobs=4)
    on = _report(name, taint=True, jobs=4)
    _assert_identical(on, off)


@pytest.mark.parametrize("name", ["chacha20", "ee-mem-cmp"])
def test_verdicts_identical_cold_and_warm_cache(name, tmp_path):
    cache = TraceCache(tmp_path / "cache")
    off = _report(name, taint=False, cache=cache)
    cold = _report(name, taint=True, cache=cache)
    stores_after_cold = cache.stores
    warm = _report(name, taint=True, cache=cache)
    _assert_identical(cold, off)
    # Full bit-identity between the two taint-on runs (wall-clock aside).
    drop_timings = lambda payload: {key: value
                                    for key, value in payload.items()
                                    if key != "timings_seconds"}
    assert drop_timings(warm) == drop_timings(cold)
    # The warm taint-on pass replayed everything: pruned task keys are
    # stable, so the second run stores nothing new.
    assert cache.stores == stores_after_cold


def test_pruned_and_unpruned_runs_never_share_cache_entries(tmp_path):
    # A pruned trace records constant empty snapshots for the pruned
    # units; replaying it for an unpruned campaign would fabricate clean
    # verdicts.  The ``pruned`` key material keeps the entries apart.
    cache = TraceCache(tmp_path / "cache")
    _report("chacha20", taint=True, cache=cache)
    hits_before = cache.hits
    off = _report("chacha20", taint=False, cache=cache)
    assert cache.hits == hits_before  # all misses: distinct key space
    _assert_identical(_report("chacha20", taint=True, cache=cache), off)


@pytest.mark.parametrize("name", ["ee-mem-cmp", "ct-mem-cmp-safe"])
def test_localization_dicts_identical(name):
    from repro.localize import localization_to_dict, localize

    results = {}
    for taint in (False, True):
        sampler = MicroSampler(SMALL_BOOM, taint=taint, cache=None)
        localization = localize(WORKLOADS[name](), sampler=sampler)
        payload = localization_to_dict(localization)
        payload.pop("timings_seconds", None)
        payload.pop("profile", None)
        results[taint] = payload
    # ee-mem-cmp escalates (no restriction applied), ct-mem-cmp-safe has
    # no leaky units (nothing to localize): both must be byte-identical.
    assert results[True] == results[False]
