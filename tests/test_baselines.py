"""Baseline tests: DATA-style software tool and the formal checker."""

import pytest

from repro.baselines import (
    build_early_exit_multiplier,
    build_serial_alu,
    check_two_safety,
    run_data_tool,
)
from repro.baselines.formal import Gate, Netlist
from repro.workloads.modexp import (
    make_me_v1_cv,
    make_me_v1_mv,
    make_me_v2_safe,
    make_sam_leaky,
)


class TestDataTool:
    def test_detects_secret_dependent_control_flow(self):
        report = run_data_tool(make_sam_leaky(n_keys=4, seed=8))
        assert report.control_flow.leaky
        assert report.leakage_detected

    def test_detects_compiler_introduced_branch(self):
        report = run_data_tool(make_me_v1_cv(n_keys=4, seed=8))
        assert report.control_flow.leaky

    def test_detects_secret_dependent_store_addresses(self):
        report = run_data_tool(make_me_v1_mv(n_keys=4, seed=8))
        assert report.memory.leaky
        assert not report.control_flow.leaky  # branchless variant
        uniques = report.unique_memory
        assert any(uniques[label] for label in uniques)

    def test_safe_code_is_clean(self):
        report = run_data_tool(make_me_v2_safe(n_keys=4, seed=8))
        assert not report.leakage_detected
        assert report.control_flow.cramers_v == pytest.approx(0.0)
        assert report.memory.cramers_v == pytest.approx(0.0)

    def test_blind_to_microarchitectural_leaks(self):
        """ME-V2-FB: the fast-bypass leak does not exist architecturally,
        so the software-level tool necessarily reports the safe verdict —
        the paper's Table I gap."""
        report = run_data_tool(make_me_v2_safe(n_keys=4, seed=8))
        assert not report.leakage_detected

    def test_iteration_count(self):
        report = run_data_tool(make_sam_leaky(n_keys=2, seed=8))
        assert report.n_iterations == 64


class TestFormalChecker:
    def test_constant_time_design_verified(self):
        result = check_two_safety(build_serial_alu(4))
        assert result.constant_time
        assert result.counterexample is None
        assert result.product_states_explored > 1

    def test_early_exit_multiplier_flagged(self):
        result = check_two_safety(build_early_exit_multiplier(3))
        assert not result.constant_time
        state_a, state_b, public, secret_a, secret_b = result.counterexample
        # The divergence stems from a secret difference now or earlier
        # (recorded in the product state).
        assert secret_a != secret_b or state_a != state_b

    def test_runtime_grows_superlinearly(self):
        small = check_two_safety(build_serial_alu(3))
        large = check_two_safety(build_serial_alu(5))
        assert large.product_states_explored > 4 * small.product_states_explored

    def test_state_space_limit_enforced(self):
        with pytest.raises(RuntimeError, match="state space"):
            check_two_safety(build_serial_alu(8), max_product_states=100)

    def test_netlist_evaluate_basic_gates(self):
        netlist = Netlist(
            name="toy",
            public_inputs=["p"],
            secret_inputs=["s"],
            registers={"r": 0},
            gates=[
                Gate("xor", "x", ("p", "s")),
                Gate("not", "nx", ("x",)),
                Gate("and", "a", ("x", "nx")),
                Gate("or", "o", ("a", "x")),
                Gate("mux", "m", ("p", "o", "r")),
            ],
            next_state={"r": "m"},
            observable_outputs=["o"],
        )
        state, outputs = netlist.evaluate((0,), (1,), (1,))
        assert outputs == (0,)  # x=0 -> a=0 -> o=0
        assert state == (0,)
        state, outputs = netlist.evaluate((0,), (1,), (0,))
        assert outputs == (1,)  # x=1 -> o=1, mux selects o
        assert state == (1,)

    def test_unknown_gate_rejected(self):
        netlist = Netlist(
            name="bad", public_inputs=[], secret_inputs=[],
            registers={"r": 0}, gates=[Gate("nand", "x", ())],
            next_state={"r": "x"}, observable_outputs=["x"],
        )
        with pytest.raises(ValueError, match="unknown gate"):
            netlist.evaluate((0,), (), ())

    def test_state_bits_property(self):
        assert build_serial_alu(6).state_bits == 6
        assert build_early_exit_multiplier(4).state_bits == 5
