"""Differential tests: the numpy engine must reproduce the scalar engine.

The scalar per-table path in :mod:`repro.sampler.stats` is the golden
reference — it implements Equations 2-4 from first principles.  The
vectorized columnar engine (:mod:`repro.sampler.matrix` +
:mod:`repro.sampler.stats_vec`) must agree with it on every statistic to
within 1e-9 and on every verdict exactly, both on real crypto campaigns and
on adversarial random trace matrices.
"""

import random

import numpy as np
import pytest

from repro.sampler import (
    MicroSampler,
    build_contingency_table,
    measure_association,
    run_campaign,
)
from repro.sampler.matrix import TraceMatrix, encode_column
from repro.sampler.stats_vec import batched_association, measure_association_counts
from repro.uarch import MEGA_BOOM
from repro.workloads.chacha import make_chacha20
from repro.workloads.memcmp import make_ct_memcmp

TOLERANCE = 1e-9
FIELDS = ("chi_squared", "p_value", "cramers_v", "cramers_v_corrected")


def assert_associations_agree(scalar, vectorized):
    assert scalar.dof == vectorized.dof
    assert scalar.n_observations == vectorized.n_observations
    assert scalar.n_classes == vectorized.n_classes
    assert scalar.n_categories == vectorized.n_categories
    for field in FIELDS:
        assert getattr(scalar, field) == pytest.approx(
            getattr(vectorized, field), abs=TOLERANCE), field


def assert_reports_agree(scalar, vectorized):
    assert scalar.leaky_units == vectorized.leaky_units
    assert scalar.units.keys() == vectorized.units.keys()
    for feature_id, unit in scalar.units.items():
        other = vectorized.units[feature_id]
        assert_associations_agree(unit.association, other.association)
        assert (unit.association_notiming is None) == (
            other.association_notiming is None)
        if unit.association_notiming is not None:
            assert_associations_agree(unit.association_notiming,
                                      other.association_notiming)


# -- full crypto campaigns ----------------------------------------------------


@pytest.fixture(scope="module", params=["chacha20", "ct_memcmp"])
def campaign(request):
    """One simulated campaign, analyzed below by both engines."""
    if request.param == "chacha20":
        workload = make_chacha20(n_keys=4, n_blocks=1, seed=6)
    else:
        workload = make_ct_memcmp(n_pairs=12, seed=2, n_runs=2)
    return run_campaign(workload, MEGA_BOOM)


def test_engines_agree_on_crypto_campaign(campaign):
    scalar = MicroSampler(MEGA_BOOM, engine="python").analyze_campaign(campaign)
    vectorized = MicroSampler(MEGA_BOOM, engine="numpy").analyze_campaign(campaign)
    assert scalar.engine == "python"
    assert vectorized.engine == "numpy"
    assert_reports_agree(scalar, vectorized)


def test_engines_agree_with_warmup_filter(campaign):
    for engine in MicroSampler.ENGINES:
        assert engine in ("python", "numpy")
    scalar = MicroSampler(MEGA_BOOM, engine="python",
                          warmup_iterations=1).analyze_campaign(campaign)
    vectorized = MicroSampler(MEGA_BOOM, engine="numpy",
                              warmup_iterations=1).analyze_campaign(campaign)
    assert scalar.n_iterations == vectorized.n_iterations
    assert_reports_agree(scalar, vectorized)


def test_record_fallback_matches_columnar_path(campaign):
    """from_iterations (the reanalyze path) equals the columnar fast path."""
    columnar = TraceMatrix.from_campaign(campaign)
    fallback = TraceMatrix.from_iterations(campaign.iterations,
                                           columnar.feature_ids)
    for feature_id in columnar.feature_ids:
        for notiming in (False, True):
            assert (columnar.table(feature_id, notiming=notiming)
                    == fallback.table(feature_id, notiming=notiming))


def test_matrix_tables_match_scalar_construction(campaign):
    """Lowering a TraceMatrix back out reproduces build_contingency_table."""
    matrix = TraceMatrix.from_campaign(campaign)
    labels = [r.label for r in campaign.iterations]
    for feature_id in matrix.feature_ids:
        hashes = [r.features[feature_id].snapshot_hash
                  for r in campaign.iterations]
        assert matrix.table(feature_id) == build_contingency_table(
            labels, hashes)


# -- seeded random trace matrices ---------------------------------------------


def _random_observations(rng, n, n_classes, n_categories):
    labels = [rng.randrange(n_classes) for _ in range(n)]
    hashes = [rng.randrange(n_categories) for _ in range(n)]
    return labels, hashes


@pytest.mark.parametrize("seed", range(8))
def test_engines_agree_on_random_matrices(seed):
    rng = random.Random(seed)
    n = rng.randrange(1, 300)
    n_classes = rng.randrange(1, 4)
    units = {f"U{i}": _random_observations(rng, n, n_classes,
                                           rng.choice([1, 2, 7, 64]))[1]
             for i in range(4)}
    labels = [rng.randrange(n_classes) for _ in range(n)]
    matrix = TraceMatrix.from_observations(labels, units,
                                           notiming_by_unit=units)
    for variant in (False, True):
        results = batched_association(matrix, notiming=variant)
        for feature_id, hashes in units.items():
            reference = measure_association(
                build_contingency_table(labels, hashes))
            assert_associations_agree(reference, results[feature_id])


def test_counts_kernel_agrees_with_scalar_on_extreme_hashes():
    """Full-width 64-bit hashes (the real snapshot-hash domain) code cleanly."""
    rng = random.Random(99)
    labels = [rng.randrange(2) for _ in range(64)]
    hashes = [rng.randrange(2 ** 64) for _ in range(64)]
    matrix = TraceMatrix.from_observations(labels, {"U": hashes})
    reference = measure_association(build_contingency_table(labels, hashes))
    assert_associations_agree(
        reference, measure_association_counts(matrix.counts(0)))


# -- category coding ----------------------------------------------------------


class TestEncodeColumn:
    def test_uint64_fast_path_sorts_categories(self):
        codes, categories = encode_column([30, 10, 30, 2 ** 63])
        assert list(categories) == [10, 30, 2 ** 63]
        assert list(codes) == [1, 0, 1, 2]

    def test_ndarray_input(self):
        codes, categories = encode_column(
            np.array([5, 5, 1], dtype=np.uint64))
        assert list(categories) == [1, 5]
        assert list(codes) == [1, 1, 0]

    def test_negative_ints_fall_back_to_dict_coding(self):
        codes, categories = encode_column([-1, 3, -1])
        assert categories == (-1, 3)
        assert list(codes) == [0, 1, 0]

    def test_floats_are_not_truncated(self):
        # A uint64 cast would collapse 1.5 and 1 into the same category.
        codes, categories = encode_column([1.5, 1, 2.5])
        assert categories == (1, 1.5, 2.5)
        assert list(codes) == [1, 0, 2]

    def test_arbitrary_orderable_labels(self):
        codes, categories = encode_column(["b", "a", "b"])
        assert categories == ("a", "b")
        assert list(codes) == [1, 0, 1]

    def test_generator_input(self):
        codes, categories = encode_column(iter([7, 7, 9]))
        assert list(categories) == [7, 9]
        assert list(codes) == [0, 0, 1]

    def test_empty_column(self):
        codes, categories = encode_column([])
        assert len(codes) == 0 and len(categories) == 0


class TestTraceMatrixValidation:
    def test_mismatched_column_length_rejected(self):
        with pytest.raises(ValueError):
            TraceMatrix.from_observations([0, 1], {"U": [1, 2, 3]})

    def test_notiming_variant_requires_notiming_build(self):
        matrix = TraceMatrix.from_observations([0, 1], {"U": [1, 2]})
        with pytest.raises(ValueError):
            matrix.counts(0, notiming=True)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            MicroSampler(MEGA_BOOM, engine="fortran")
