"""Pipeline-viewer tests."""

import pytest

from repro.cli import main
from repro.isa import assemble
from repro.uarch import MEGA_BOOM, SMALL_BOOM, record_pipeline

_SOURCE = """
.data
v: .dword 7
.text
main:
    la t0, v
    ld t1, 0(t0)
    addi t1, t1, 1
    sd t1, 0(t0)
    li a0, 0
    li a7, 93
    ecall
"""


@pytest.fixture(scope="module")
def trace_and_result():
    program = assemble(_SOURCE, entry="main")
    return record_pipeline(program, MEGA_BOOM)


def test_records_all_committed_instructions(trace_and_result):
    trace, result = trace_and_result
    assert len(trace.slots) == result.stats.committed
    assert result.exit_code == 0


def test_timestamps_are_ordered(trace_and_result):
    trace, _ = trace_and_result
    for slot in trace.slots:
        assert slot.fetch <= slot.dispatch <= slot.commit
        if slot.issue >= 0:
            assert slot.dispatch <= slot.issue <= slot.complete <= slot.commit


def test_commit_order_is_program_order(trace_and_result):
    trace, _ = trace_and_result
    commits = [slot.commit for slot in trace.slots]
    assert commits == sorted(commits)


def test_load_shows_memory_latency(trace_and_result):
    trace, _ = trace_and_result
    load = next(s for s in trace.slots if s.mnemonic == "ld")
    # D$ cold miss: tens of cycles between issue and completion.
    assert load.complete - load.issue > 10


def test_render_contains_stages(trace_and_result):
    trace, _ = trace_and_result
    text = trace.render()
    assert "F" in text and "C" in text and "ld t1, 0(t0)" in text
    assert text.count("\n") >= len(trace.slots)


def test_render_window(trace_and_result):
    trace, _ = trace_and_result
    two = trace.render(start=0, count=2)
    assert two.count("|") == 2


def test_render_empty():
    from repro.uarch.pipeview import PipelineTrace
    assert "no committed instructions" in PipelineTrace().render()


def test_limit_bounds_recording():
    program = assemble(_SOURCE, entry="main")
    trace, _ = record_pipeline(program, SMALL_BOOM, limit=3)
    assert len(trace.slots) == 3


def test_cli_pipeview(tmp_path, capsys):
    source = tmp_path / "p.S"
    source.write_text(_SOURCE)
    code = main(["pipeview", str(source), "--entry", "main", "--count", "5"])
    out = capsys.readouterr().out
    assert code == 0
    assert "pipeline timeline" in out
    assert "exit code 0" in out
