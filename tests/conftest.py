"""Shared fixtures for the test suite."""

from __future__ import annotations

import signal
import threading

import pytest

from repro.isa import assemble
from repro.uarch import MEGA_BOOM, SMALL_BOOM

try:  # CI installs the dev extras; the bare container may not have it.
    import pytest_timeout  # noqa: F401

    _HAVE_PYTEST_TIMEOUT = True
except ImportError:
    _HAVE_PYTEST_TIMEOUT = False

#: Hang ceilings (seconds) for the SIGALRM fallback guard below.  With
#: pytest-timeout installed these are ignored — CI passes ``--timeout``
#: explicitly (see .github/workflows/ci.yml).
DEFAULT_TEST_TIMEOUT = 120
SLOW_TEST_TIMEOUT = 600


def pytest_collection_modifyitems(config, items):
    """Everything not explicitly ``slow`` is part of the tier1 fast gate.

    CI runs ``pytest -m tier1`` as its quick gate and the full (unfiltered)
    suite with coverage afterwards; the auto-marker means new tests join the
    gate by default and only deliberately heavy ones opt out.
    """
    for item in items:
        if "slow" not in item.keywords:
            item.add_marker(pytest.mark.tier1)


@pytest.fixture(autouse=True)
def _hang_guard(request):
    """Per-test hang ceiling when pytest-timeout is unavailable.

    The service tests drive real subprocess pools and asyncio servers; a
    deadlock there would otherwise wedge the whole suite.  When the
    pytest-timeout plugin is installed it owns the job (CI); this fallback
    arms ``SIGALRM`` instead, honouring ``@pytest.mark.timeout(N)`` and
    defaulting by slow/fast tier.
    """
    if _HAVE_PYTEST_TIMEOUT or not hasattr(signal, "SIGALRM") \
            or threading.current_thread() is not threading.main_thread():
        yield
        return
    limit = (SLOW_TEST_TIMEOUT if "slow" in request.keywords
             else DEFAULT_TEST_TIMEOUT)
    marker = request.node.get_closest_marker("timeout")
    if marker is not None and marker.args:
        limit = marker.args[0]

    def _on_alarm(_signum, _frame):
        pytest.fail(f"test exceeded the {limit}s hang guard", pytrace=True)

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, limit)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture(autouse=True)
def _isolated_trace_cache(tmp_path, monkeypatch):
    """Keep the default trace cache out of the user's real cache directory."""
    monkeypatch.setenv("MICROSAMPLER_CACHE_DIR", str(tmp_path / "trace-cache"))


@pytest.fixture(scope="session")
def mega():
    return MEGA_BOOM


@pytest.fixture(scope="session")
def small():
    return SMALL_BOOM


#: A small program exercising loops, calls, memory and M-extension ops;
#: exits with a deterministic checksum.
SUM_PROGRAM = """
.data
arr: .word 3, 1, 4, 1, 5, 9, 2, 6
out: .zero 8
.text
main:
    la   s0, arr
    li   s1, 0
    li   s2, 0
loop:
    slli t0, s2, 2
    add  t0, t0, s0
    lw   t1, 0(t0)
    add  s1, s1, t1
    addi s2, s2, 1
    li   t2, 8
    blt  s2, t2, loop
    mv   a0, s1
    call double
    la   t0, out
    sd   a0, 0(t0)
    li   a7, 93
    ecall
double:
    slli a0, a0, 1
    ret
"""

SUM_PROGRAM_EXIT = 62  # 2 * (3+1+4+1+5+9+2+6)


@pytest.fixture(scope="session")
def sum_program():
    return assemble(SUM_PROGRAM, entry="main")
