"""Lane-batched OoO core: identity, divergence fallback, cache format v5.

The contract under test is the one :mod:`repro.uarch.batch_core` promises:
carrying N campaign inputs as value lanes through one shared cycle-accurate
pipeline NEVER changes what is observed — per-unit digests, verdicts, run
stats and consoles are bit-identical to scalar simulation — and any
cross-lane difference in timing-relevant state either falls back to scalar
re-simulation (transparently) or is surfaced as a first-class
:class:`~repro.isa.batch_interpreter.DivergenceEvent`.
"""

from __future__ import annotations

import pickle

import pytest

from repro.isa.assembler import assemble
from repro.sampler import MicroSampler, Workload, run_campaign
from repro.sampler.exec_backend import (
    RunTask,
    execute_run,
    execute_run_batch,
    _lane_groups,
)
from repro.sampler.report import report_to_dict
from repro.sampler.runner import patch_program
from repro.sampler.trace_cache import (
    CACHE_FORMAT_VERSION,
    TraceCache,
    prune_cache,
)
from repro.uarch.batch_core import BatchCore, LaneDivergence
from repro.uarch.config import SMALL_BOOM
from tests.test_checkpoint import _scrub_timings


def _report_dict(workload, *, batch_lanes, jobs=1, cache=None, config=None):
    sampler = MicroSampler(config or SMALL_BOOM, warmup_insts=64,
                           batch_lanes=batch_lanes, jobs=jobs, cache=cache)
    return _scrub_timings(report_to_dict(sampler.analyze(workload)))


def _strip_divergences(payload: dict) -> dict:
    """Drop the one field batching may legitimately add to a report."""
    payload = dict(payload)
    payload.pop("divergences", None)
    return payload


# ---------------------------------------------------------------- identity


def _bundled_workloads():
    from repro.cli import AUDIT_EXPECTATIONS, build_workload

    return [build_workload(name, inputs=2, seed=3)
            for name in AUDIT_EXPECTATIONS]


def test_batched_identical_to_scalar_on_all_bundled_workloads():
    """Digests and verdicts pin bit-identical, leaky and constant-time alike.

    The scalar core stays the authoritative reference: for every bundled
    workload the lane-batched report must equal the scalar one on every
    field except the surfaced divergences (which scalar simulation cannot
    observe).
    """
    for workload in _bundled_workloads():
        scalar = _report_dict(workload, batch_lanes=None)
        batched = _report_dict(workload, batch_lanes="auto")
        assert scalar.pop("divergences") == []
        batched.pop("divergences")
        assert batched == scalar, workload.name


def test_batched_identical_cold_and_warm_cache_parallel(tmp_path):
    from repro.cli import build_workload

    for name in ("ct-mem-cmp", "sam-leaky"):
        workload = build_workload(name, inputs=4, seed=3)
        scalar = _strip_divergences(
            _report_dict(workload, batch_lanes=None))
        cache = TraceCache(tmp_path / name)
        cold = _report_dict(workload, batch_lanes="auto", jobs=4,
                            cache=cache)
        warm = _report_dict(workload, batch_lanes="auto", jobs=4,
                            cache=cache)
        # Warm replays everything — including divergences — from the cache.
        assert warm == cold, name
        assert cache.hits > 0
        assert _strip_divergences(cold) == scalar, name


def test_flip_one_byte_fuzz_oracle():
    """Flip-one-byte inputs over the batched core, scalar as the oracle.

    Single-byte perturbations of one base secret are exactly the
    populations leakage analysis compares, and the worst case for lockstep
    execution (maximally similar prefixes that may split anywhere).
    """
    import random

    from repro.workloads import make_ct_memcmp

    base_workload = make_ct_memcmp(n_pairs=1, n_runs=1)
    base = dict(base_workload.inputs[0])
    symbol, payload = next(iter(base.items()))
    rng = random.Random(0xB47C)
    inputs = [dict(base)]
    for _ in range(7):
        flipped = bytearray(payload)
        position = rng.randrange(len(flipped))
        flipped[position] ^= 1 << rng.randrange(8)
        mutated = dict(base)
        mutated[symbol] = bytes(flipped)
        inputs.append(mutated)
    workload = Workload(name="fuzz-flip", source=base_workload.source,
                        inputs=inputs)

    scalar = run_campaign(workload, SMALL_BOOM)
    batched = run_campaign(workload, SMALL_BOOM, batch_lanes=8)

    def observe(campaign):
        return [
            (r.index, r.label, r.start_cycle, r.end_cycle, r.run_index,
             r.ordinal,
             tuple(sorted((fid, None if f.cycle_digests is None
                           else tuple(f.cycle_digests), f.rows)
                          for fid, f in r.features.items())))
            for r in campaign.iterations
        ]

    assert observe(batched) == observe(scalar)
    assert [r.stats for r in batched.runs] == [r.stats for r in scalar.runs]
    assert ([r.console for r in batched.runs]
            == [r.console for r in scalar.runs])


# ------------------------------------------------------ divergence triggers


_PROLOGUE = """
.data
key: .byte 0
table: .zero 64
msg: .byte 65, 66, 67, 68
.text
main:
    la t0, key
    lbu t1, 0(t0)
"""

_EPILOGUE = """
    li a0, 0
    li a7, 93
    ecall
"""

_TRIGGERS = {
    "branch": _PROLOGUE + """
    beqz t1, skip
    addi t2, t2, 1
skip:
""" + _EPILOGUE,
    "mem": _PROLOGUE + """
    la t2, table
    add t2, t2, t1
    lbu t3, 0(t2)
""" + _EPILOGUE,
    "jump": _PROLOGUE + """
    la t2, target0
    slli t1, t1, 3
    add t2, t2, t1
    jalr ra, 0(t2)
""" + _EPILOGUE + """
target0:
    nop
    jalr zero, 0(ra)
target1:
    nop
    jalr zero, 0(ra)
""",
    "syscall": _PROLOGUE + """
    addi a2, t1, 1
    la a1, msg
    li a0, 1
    li a7, 64
    ecall
""" + _EPILOGUE,
    "div-latency": _PROLOGUE + """
    li t2, 3
    div t3, t1, t2
""" + _EPILOGUE,
    # The operand must be architecturally visible by the time the AND
    # renames for the bypass check to fire at all; the nop sled covers the
    # cold-cache load latency.
    "fast-bypass": _PROLOGUE + "    nop\n" * 80 + """
    li t2, 255
    and t3, t1, t2
""" + _EPILOGUE,
}

_TRIGGER_CONFIGS = {
    "div-latency": SMALL_BOOM.with_(variable_div_latency=True),
    "fast-bypass": SMALL_BOOM.with_(fast_bypass=True),
}

_TRIGGER_KEYS = {
    "div-latency": (b"\x01", b"\xff"),
    "mem": (b"\x00", b"\x08"),
    "syscall": (b"\x00", b"\x02"),
}


def _lane_programs(source, payloads):
    base = assemble(source, entry="main")
    return [patch_program(base, {"key": payload}) for payload in payloads]


@pytest.mark.parametrize("kind", sorted(_TRIGGERS))
def test_divergence_trigger(kind):
    """Each timing-relevant cross-lane difference raises its own kind."""
    config = _TRIGGER_CONFIGS.get(kind, SMALL_BOOM)
    payloads = _TRIGGER_KEYS.get(kind, (b"\x00", b"\x01"))
    core = BatchCore(_lane_programs(_TRIGGERS[kind], payloads), config)
    with pytest.raises(LaneDivergence) as excinfo:
        core.run(max_cycles=20_000)
    event = excinfo.value.event
    assert event.kind == kind
    assert event.lanes == (1,)
    assert event.step == core.cycle


def test_checkpoint_head_divergence():
    from repro.sampler.checkpoint import Checkpoint

    programs = _lane_programs(_TRIGGERS["branch"], (b"\x00", b"\x00"))
    core = BatchCore(programs, SMALL_BOOM)
    entry = programs[0].entry
    checkpoints = [
        Checkpoint(pc=entry, regs=(0,) * 32, pages=(), console=b"",
                   brk=0, steps=steps, pre_roi_steps=steps)
        for steps in (4, 9)
    ]
    with pytest.raises(LaneDivergence) as excinfo:
        core.restore_architectural_states(checkpoints)
    assert excinfo.value.event.kind == "checkpoint"
    assert excinfo.value.event.mnemonic == "<restore>"


def test_lockstep_run_keeps_identical_lanes_together():
    programs = _lane_programs(_TRIGGERS["branch"], (b"\x01", b"\x01"))
    core = BatchCore(programs, SMALL_BOOM)
    result = core.run(max_cycles=20_000)
    assert result.exit_code == 0


# -------------------------------------------------------- fallback semantics


def _tasks(source, payloads, config=SMALL_BOOM, lanes=None):
    base = assemble(source, entry="main")
    width = lanes if lanes is not None else len(payloads)
    return [
        RunTask(run_index=index, workload_name="trigger",
                program=patch_program(base, {"key": payload}),
                config=config, core_lanes=width)
        for index, payload in enumerate(payloads)
    ]


def test_fallback_outputs_identical_to_scalar():
    """A diverging group re-simulates scalar and stays output-identical."""
    tasks = _tasks(_TRIGGERS["branch"], (b"\x00", b"\x01", b"\x01", b"\x02"))
    batched = execute_run_batch(tasks)
    scalar = [execute_run(task) for task in tasks]
    assert len(batched) == len(scalar)
    for got, want in zip(batched, scalar):
        assert got.run_index == want.run_index
        assert got.run.exit_code == want.run.exit_code
        assert got.run.stats == want.run.stats
        assert got.run.console == want.run.console
        assert got.cycles_sampled == want.cycles_sampled
    # All events land on the group's first output, remapped to run indices.
    events = batched[0].divergences
    assert events and all(e.kind == "branch" for e in events)
    assert all(output.divergences == () for output in batched[1:])


def test_lane_groups_partitioning():
    scalar_task = _tasks(_TRIGGERS["branch"], (b"\x00",), lanes=None)[0]
    scalar_task = RunTask(**{**scalar_task.__dict__, "core_lanes": None})
    batch_tasks = _tasks(_TRIGGERS["branch"],
                         (b"\x00", b"\x01", b"\x02"), lanes=2)
    groups = _lane_groups([scalar_task, *batch_tasks])
    assert [len(group) for group in groups] == [1, 2, 1]
    assert groups[0][0].core_lanes is None


# ------------------------------------------------------ cache-format bump


def test_cache_key_includes_core_lanes():
    task = _tasks(_TRIGGERS["branch"], (b"\x00",), lanes=4)[0]
    cache = TraceCache("/nonexistent")
    batched_key = cache.key_for(task)
    scalar_key = cache.key_for(
        RunTask(**{**task.__dict__, "core_lanes": None}))
    assert batched_key != scalar_key


def test_prune_migrates_v4_entries_and_their_checkpoints(tmp_path):
    """Format-4 payloads (and the checkpoints only they reference) sweep.

    The orphan sweep must keep working across the 4 -> 5 payload layout
    change: a stale v4 trace can no longer vouch for its checkpoint, while
    a current v5 trace protects its own.
    """
    from repro.sampler.checkpoint import CHECKPOINT_FORMAT_VERSION

    root = tmp_path / "cache"
    cache = TraceCache(root)

    # A current-version entry, produced by the real batched pipeline so its
    # payload records both a checkpoint key and the divergence tuple slot.
    # The prologue nop sled gives the functional fast-forward something to
    # skip, so a checkpoint is actually captured and referenced.
    source = """
.data
key: .byte 0
.text
main:
""" + "    nop\n" * 24 + """
    roi.begin
    la t0, key
    lbu t1, 0(t0)
    andi t2, t1, 1
    iter.begin t2
    nop
    iter.end
    roi.end
    li a0, 0
    li a7, 93
    ecall
"""
    workload = Workload(
        name="migration", source=source,
        inputs=[{"key": bytes([k])} for k in (0, 1)],
    )
    campaign = run_campaign(workload, SMALL_BOOM, cache=cache,
                            warmup_insts=8, batch_lanes=2)
    assert campaign.runs
    live_traces = sorted(root.rglob("*.pkl"))
    live_ckpts = sorted(root.rglob("*.ckpt"))
    assert live_traces and live_ckpts

    # Plant a pre-bump v4 entry: 7-element payload, old version stamp,
    # referencing its own (current-format) checkpoint.
    old_ckpt = root / "checkpoints" / "aa" / ("a" * 40 + ".ckpt")
    old_ckpt.parent.mkdir(parents=True, exist_ok=True)
    old_ckpt.write_bytes(pickle.dumps((CHECKPOINT_FORMAT_VERSION, "x")))
    old_trace = root / "aa" / ("b" * 40 + ".pkl")
    old_trace.parent.mkdir(parents=True, exist_ok=True)
    old_trace.write_bytes(pickle.dumps(
        (4, (), (0, {}, "", ()), 0, 0.0, 0, old_ckpt.stem)))
    assert CACHE_FORMAT_VERSION == 6

    result = prune_cache(root)
    assert result["removed"]["trace"] == 1
    assert result["removed"]["orphan"] == 1
    assert not old_trace.exists() and not old_ckpt.exists()
    assert sorted(root.rglob("*.pkl")) == live_traces
    assert sorted(root.rglob("*.ckpt")) == live_ckpts


def test_divergences_roundtrip_through_cache(tmp_path):
    cache = TraceCache(tmp_path / "cache")
    tasks = _tasks(_TRIGGERS["branch"], (b"\x00", b"\x01"))
    outputs = execute_run_batch(tasks)
    assert outputs[0].divergences
    key = cache.key_for(tasks[0])
    assert cache.store(key, outputs[0])
    replayed = cache.load(key)
    assert replayed is not None
    assert replayed.divergences == outputs[0].divergences
