"""Campaign service: job API, scheduling, dedup, cancellation, faults.

Integration tests run a real :class:`ServiceServer` (real HTTP over a
loopback socket, real worker pool processes) per test, against the
per-test isolated trace cache from conftest.  The core assertion
throughout is the service's consistency contract: every result is
bit-identical (modulo wall-clock fields) to the equivalent one-shot
library/CLI invocation.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
from types import SimpleNamespace

import pytest

from repro.cli import AUDIT_EXPECTATIONS, build_workload
from repro.sampler import MicroSampler, audit_to_dict, run_audit
from repro.sampler.checkpoint import DEFAULT_WARMUP_INSTS
from repro.sampler.exec_backend import FAULT_TOKEN_ENV
from repro.sampler.report import report_to_dict
from repro.service import (
    JobSpec,
    JobSpecError,
    PriorityJobQueue,
    ServiceClient,
    ServiceError,
    ServiceServer,
    place_shards,
    strip_volatile,
    submit_and_wait,
)
from repro.service.shard import shard_size_for
from repro.uarch import SMALL_BOOM

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="the service worker pool relies on fork")


# -- helpers ----------------------------------------------------------------


def oneshot_sampler():
    """A sampler configured exactly like the service's (and the CLI's)."""
    return MicroSampler(SMALL_BOOM, jobs=1, cache=None,
                        warmup_insts=DEFAULT_WARMUP_INSTS,
                        batch_lanes="auto", engine="numpy")


def oneshot_analyze(name: str, inputs: int = 2) -> dict:
    workload = build_workload(name, inputs=inputs, seed=3)
    return report_to_dict(oneshot_sampler().analyze(workload))


def oneshot_audit(names, inputs: int = 2) -> dict:
    workloads = [build_workload(name, inputs=inputs, seed=3)
                 for name in names]
    expectations = {name: AUDIT_EXPECTATIONS[name]
                    for name in names if name in AUDIT_EXPECTATIONS}
    return audit_to_dict(run_audit(workloads, config=SMALL_BOOM,
                                   expectations=expectations,
                                   sampler=oneshot_sampler()))


def run_service(scenario, **server_kwargs):
    """Run ``scenario(server, client)`` against a fresh service."""
    server_kwargs.setdefault("workers", 2)

    async def _main():
        async with ServiceServer(port=0, **server_kwargs) as server:
            client = ServiceClient(server.host, server.port)
            return await scenario(server, client)

    return asyncio.run(_main())


ANALYZE_SPEC = {"kind": "analyze", "workload": "sam-ct",
                "config": "small", "inputs": 2}


# -- priority queue ----------------------------------------------------------


def _stub_job(job_id: str, priority: int = 0):
    return SimpleNamespace(id=job_id, priority=priority)


def test_queue_orders_by_priority_then_arrival():
    async def _main():
        queue = PriorityJobQueue()
        queue.push(_stub_job("low-1", 0))
        queue.push(_stub_job("high", 5))
        queue.push(_stub_job("low-2", 0))
        queue.push(_stub_job("mid", 3))
        order = [(await queue.pop()).id for _ in range(4)]
        assert order == ["high", "mid", "low-1", "low-2"]

    asyncio.run(_main())


def test_queue_remove_tombstones_entry():
    async def _main():
        queue = PriorityJobQueue()
        queue.push(_stub_job("a"))
        queue.push(_stub_job("b"))
        assert queue.remove("a") is True
        assert queue.remove("a") is False
        assert len(queue) == 1
        assert (await queue.pop()).id == "b"

    asyncio.run(_main())


def test_queue_close_drains_then_returns_none():
    async def _main():
        queue = PriorityJobQueue()
        queue.push(_stub_job("a"))
        queue.close()
        assert (await queue.pop()).id == "a"
        assert await queue.pop() is None
        with pytest.raises(RuntimeError, match="closed"):
            queue.push(_stub_job("b"))

    asyncio.run(_main())


def test_queue_pop_wakes_on_push():
    async def _main():
        queue = PriorityJobQueue()
        popper = asyncio.create_task(queue.pop())
        await asyncio.sleep(0.01)
        queue.push(_stub_job("late"))
        assert (await asyncio.wait_for(popper, timeout=5)).id == "late"

    asyncio.run(_main())


# -- shard placement ---------------------------------------------------------


def test_shard_size_for_balances_across_workers():
    assert shard_size_for(0, 4) == 1
    assert shard_size_for(8, 4) == 1    # one input per slot, 2x slack
    assert shard_size_for(32, 2) == 8   # capped at DEFAULT_MAX_SHARD_TASKS
    assert shard_size_for(100, 1, max_shard_tasks=4) == 4
    assert shard_size_for(5, 2) == 2


def test_place_shards_buckets_inputs():
    plan = SimpleNamespace(
        outputs=[object(), None, None, None, object(), None],
        duplicate_of={5: 1},
        to_run=[1, 2, 3],
    )
    placement = place_shards(plan, workers=1, shard_size=2)
    assert placement.cached == (0, 4)
    assert placement.duplicates == (5,)
    assert placement.shards == ((1, 2), (3,))
    assert placement.n_inputs == 6


# -- spec validation & volatile stripping ------------------------------------


def test_strip_volatile_removes_wall_clock_fields():
    payload = {
        "verdict": True,
        "timings_seconds": {"simulate": 1.0},
        "entries": [{"name": "x", "seconds": 0.5, "profile": {"a": 1}}],
    }
    assert strip_volatile(payload) == {
        "verdict": True, "entries": [{"name": "x"}]}


@pytest.mark.parametrize("payload, match", [
    ({"kind": "explode"}, "unknown job kind"),
    ({"kind": "analyze"}, "need a 'workload'"),
    ({"kind": "analyze", "workload": "nope"}, "unknown workload"),
    ({"kind": "audit", "workloads": ["sam-ct", "nope"]},
     "unknown workload"),
    ({"kind": "analyze", "workload": "sam-ct", "engine": "fortran"},
     "unknown engine"),
    ({"kind": "analyze", "workload": "sam-ct", "inputs": 0},
     "positive integer"),
    ({"kind": "analyze", "workload": "sam-ct", "frobnicate": 1},
     "unknown job spec field"),
    ({"kind": "analyze", "workload": "sam-ct", "warmup_insts": "soon"},
     "warmup"),
    ("not a dict", "JSON object"),
])
def test_jobspec_rejects_bad_payloads(payload, match):
    with pytest.raises(JobSpecError, match=match):
        JobSpec.from_dict(payload)


def test_jobspec_defaults_mirror_cli():
    spec = JobSpec.from_dict({"kind": "analyze", "workload": "sam-ct"})
    assert spec.inputs == 8
    assert spec.seed == 3
    assert spec.engine == "numpy"
    assert spec.config == "mega"
    assert spec.resolve_warmup_insts() == DEFAULT_WARMUP_INSTS


# -- service integration -----------------------------------------------------


def test_service_analyze_matches_oneshot():
    async def scenario(server, client):
        final = await submit_and_wait(client, ANALYZE_SPEC, timeout=120)
        assert final["state"] == "done"
        assert final["stats"]["shards_simulated"] == 2
        return final

    final = run_service(scenario)
    assert strip_volatile(final["result"]) \
        == strip_volatile(oneshot_analyze("sam-ct"))


def test_cached_replay_never_occupies_a_simulation_slot():
    async def scenario(server, client):
        first = await submit_and_wait(client, ANALYZE_SPEC, timeout=120)
        pool_after_first = (await client.stats())["pool"]
        second = await submit_and_wait(client, ANALYZE_SPEC, timeout=120)
        pool_after_second = (await client.stats())["pool"]
        return first, second, pool_after_first, pool_after_second

    first, second, pool_1, pool_2 = run_service(scenario)
    assert second["stats"]["shards_cached"] == 2
    assert second["stats"]["shards_simulated"] == 0
    assert second["stats"]["shards_dispatched"] == 0
    # The pool never saw the second job at all.
    assert pool_2["shards_dispatched"] == pool_1["shards_dispatched"]
    assert strip_volatile(first["result"]) \
        == strip_volatile(second["result"])


def test_concurrent_duplicate_jobs_simulate_each_input_once():
    async def scenario(server, client):
        return await asyncio.gather(
            submit_and_wait(client, ANALYZE_SPEC, timeout=120),
            submit_and_wait(client, ANALYZE_SPEC, timeout=120),
        )

    finals = run_service(scenario, max_active=4)
    simulated = sum(final["stats"]["shards_simulated"] for final in finals)
    served = sum(final["stats"]["shards_cached"]
                 + final["stats"]["shards_deduped"] for final in finals)
    assert simulated == 2  # each of the 2 inputs simulated exactly once
    assert served == 2     # ... and served to the twin without a slot
    assert strip_volatile(finals[0]["result"]) \
        == strip_volatile(finals[1]["result"])


def test_cancel_queued_job():
    slow_spec = {"kind": "analyze", "workload": "mp-modexp-ct",
                 "config": "small", "inputs": 4}

    async def scenario(server, client):
        running = await client.submit(slow_spec)
        queued = await client.submit(ANALYZE_SPEC)
        cancel = await client.cancel(queued["id"])
        assert cancel["cancelled"] is True
        final_queued = await client.wait(queued["id"], timeout=60)
        final_running = await client.wait(running["id"], timeout=120)
        assert final_queued["state"] == "cancelled"
        assert final_running["state"] == "done"
        # A cancelled-while-queued job never started.
        events = [event async for event in client.events(queued["id"])]
        assert [event["type"] for event in events] \
            == ["queued", "cancelled"]

    run_service(scenario, max_active=1)


def test_cancel_running_job():
    async def scenario(server, client):
        job = await client.submit({"kind": "analyze",
                                   "workload": "mp-modexp-ct",
                                   "config": "small", "inputs": 4})
        while (await client.job(job["id"]))["state"] == "queued":
            await asyncio.sleep(0.01)
        cancel = await client.cancel(job["id"])
        assert cancel["cancelled"] is True
        final = await client.wait(job["id"], timeout=60)
        assert final["state"] == "cancelled"
        # The pool must be reusable after a cancellation.
        follow_up = await submit_and_wait(client, ANALYZE_SPEC, timeout=120)
        assert follow_up["state"] == "done"

    run_service(scenario, max_active=1)


def test_priority_jumps_the_queue():
    busy_spec = {"kind": "analyze", "workload": "mp-modexp-ct",
                 "config": "small", "inputs": 4}
    low_spec = dict(ANALYZE_SPEC, priority=0)
    high_spec = dict(ANALYZE_SPEC, workload="sam-leaky", priority=5)

    async def scenario(server, client):
        busy = await client.submit(busy_spec)
        low = await client.submit(low_spec)
        high = await client.submit(high_spec)
        for job in (busy, low, high):
            assert (await client.wait(job["id"], timeout=240))["state"] \
                == "done"

        async def start_seq(job_id):
            async for event in client.events(job_id):
                if event["type"] == "started":
                    return event["start_seq"]
            raise AssertionError(f"{job_id} never started")

        assert await start_seq(high["id"]) < await start_seq(low["id"])

    run_service(scenario, max_active=1)


def test_http_error_codes():
    async def scenario(server, client):
        status, _body = await client.request("GET", "/jobs/job-999999")
        assert status == 404
        status, _body = await client.request("GET", "/no/such/route")
        assert status == 404
        status, _body = await client.request("DELETE", "/jobs")
        assert status == 405
        # Invalid JSON body.
        reader, writer = await asyncio.open_connection(server.host,
                                                       server.port)
        writer.write(b"POST /jobs HTTP/1.1\r\nHost: x\r\n"
                     b"Content-Length: 4\r\n\r\n{oop")
        await writer.drain()
        head = await reader.readuntil(b"\r\n\r\n")
        assert b"400" in head.split(b"\r\n", 1)[0]
        writer.close()
        # Well-formed JSON, invalid spec.
        with pytest.raises(ServiceError) as excinfo:
            await client.submit({"kind": "analyze", "workload": "nope"})
        assert excinfo.value.status == 400
        # Bad specs must not leave a job behind.
        assert await client.jobs() == []

    run_service(scenario, workers=1)


def test_event_stream_replays_and_terminates():
    async def scenario(server, client):
        final = await submit_and_wait(client, ANALYZE_SPEC, timeout=120)
        events = [event async for event in client.events(final["id"])]
        types = [event["type"] for event in events]
        assert types[0] == "queued"
        assert types[1] == "started"
        assert types[-1] == "done"
        assert "progress" in types
        assert [event["seq"] for event in events] \
            == list(range(len(events)))
        # Resume from an offset, as a reconnecting client would.
        tail = [event async for event in client.events(final["id"],
                                                       start=2)]
        assert tail == events[2:]

    run_service(scenario)


def test_health_stats_and_workloads_endpoints():
    async def scenario(server, client):
        assert (await client.health()) == {"status": "ok"}
        listing = await client.workloads()
        assert "sam-ct" in listing["workloads"]
        assert set(listing["audit_suite"]) == set(AUDIT_EXPECTATIONS)
        stats = await client.stats()
        assert stats["pool"]["workers"] == 2
        assert stats["jobs"]["total"] == 0
        assert json.dumps(stats)  # fully JSON-serializable

    run_service(scenario)


def test_job_completes_despite_worker_death(tmp_path, monkeypatch):
    token = tmp_path / "fault-token"
    token.write_text("boom")
    monkeypatch.setenv(FAULT_TOKEN_ENV, str(token))

    async def scenario(server, client):
        final = await submit_and_wait(client, ANALYZE_SPEC, timeout=240)
        stats = await client.stats()
        return final, stats

    final, stats = run_service(scenario)
    assert final["state"] == "done"
    assert not token.exists()
    assert stats["pool"]["workers_replaced"] == 1
    assert stats["pool"]["shards_redispatched"] >= 1
    assert strip_volatile(final["result"]) \
        == strip_volatile(oneshot_analyze("sam-ct"))


def test_audit_determinism_serial_then_service():
    """Same audit, twice serially then twice via the service, one process:
    four bit-identical verdict dicts (the in-process regression gate)."""
    names = ["sam-ct", "sam-leaky"]
    serial = [strip_volatile(oneshot_audit(names)) for _ in range(2)]
    assert serial[0] == serial[1]

    spec = {"kind": "audit", "workloads": names,
            "config": "small", "inputs": 2}

    async def scenario(server, client):
        first = await submit_and_wait(client, spec, timeout=240)
        second = await submit_and_wait(client, spec, timeout=240)
        return [first, second]

    service = [strip_volatile(final["result"])
               for final in run_service(scenario)]
    assert service[0] == service[1]
    assert service[0] == serial[0]


def test_service_localize_matches_oneshot():
    spec = {"kind": "localize", "workload": "sam-leaky",
            "config": "small", "inputs": 2, "permutations": 19}

    async def scenario(server, client):
        return await submit_and_wait(client, spec, timeout=240)

    final = run_service(scenario)
    assert final["state"] == "done"

    from repro.localize import localization_to_dict, localize

    workload = build_workload("sam-leaky", inputs=2, seed=3)
    oneshot = localization_to_dict(
        localize(workload, sampler=oneshot_sampler(), permutations=19))
    assert strip_volatile(final["result"]) == strip_volatile(oneshot)
    assert final["result"]["leakage_localized"] is True
