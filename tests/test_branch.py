"""Branch-prediction unit tests: gshare, BTB, RAS, checkpointing."""

import pytest

from repro.uarch import MEGA_BOOM, BranchPredictor, GsharePredictor
from repro.uarch.branch import BranchTargetBuffer, ReturnAddressStack


class TestGshare:
    def test_initial_prediction_not_taken(self):
        gshare = GsharePredictor(64, 6)
        assert gshare.predict(0x1000) is False

    def test_training_flips_prediction(self):
        gshare = GsharePredictor(64, 6)
        ghr = gshare.ghr
        gshare.train(0x1000, True, ghr)
        gshare.train(0x1000, True, ghr)
        assert gshare.predict(0x1000) is True

    def test_counter_saturation(self):
        gshare = GsharePredictor(64, 6)
        ghr = gshare.ghr
        for _ in range(10):
            gshare.train(0x1000, True, ghr)
        assert gshare.counters[gshare.index(0x1000)] == 3
        for _ in range(10):
            gshare.train(0x1000, False, ghr)
        assert gshare.counters[gshare.index(0x1000)] == 0

    def test_history_affects_index(self):
        gshare = GsharePredictor(64, 6)
        index_before = gshare.index(0x1000)
        gshare.predict_and_update_history(0x1000, True)
        assert gshare.index(0x1000) != index_before

    def test_history_masked_to_width(self):
        gshare = GsharePredictor(64, 4)
        for _ in range(20):
            gshare.predict_and_update_history(0, True)
        assert gshare.ghr == 0xF

    def test_table_size_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            GsharePredictor(100, 6)


class TestBtb:
    def test_update_and_lookup(self):
        btb = BranchTargetBuffer(2)
        btb.update(0x1000, 0x2000)
        assert btb.lookup(0x1000) == 0x2000
        assert btb.lookup(0x3000) is None

    def test_fifo_replacement(self):
        btb = BranchTargetBuffer(2)
        btb.update(1, 10)
        btb.update(2, 20)
        btb.update(3, 30)
        assert btb.lookup(1) is None
        assert btb.lookup(2) == 20 and btb.lookup(3) == 30

    def test_update_existing_does_not_evict(self):
        btb = BranchTargetBuffer(2)
        btb.update(1, 10)
        btb.update(2, 20)
        btb.update(1, 11)
        assert btb.lookup(1) == 11 and btb.lookup(2) == 20


class TestRas:
    def test_push_pop(self):
        ras = ReturnAddressStack(4)
        ras.push(0x100)
        ras.push(0x200)
        assert ras.pop() == 0x200
        assert ras.pop() == 0x100
        assert ras.pop() is None

    def test_bounded_depth_drops_oldest(self):
        ras = ReturnAddressStack(2)
        ras.push(1)
        ras.push(2)
        ras.push(3)
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.pop() is None

    def test_snapshot_restore(self):
        ras = ReturnAddressStack(4)
        ras.push(1)
        snap = ras.snapshot()
        ras.push(2)
        ras.pop()
        ras.pop()
        ras.restore(snap)
        assert ras.pop() == 1


class TestBranchPredictorUnit:
    def test_checkpoint_restores_ghr_and_ras(self):
        predictor = BranchPredictor(MEGA_BOOM)
        predictor.on_call(0x1234)
        checkpoint = predictor.checkpoint()
        predictor.predict_branch(0x1000)
        predictor.ras.pop()
        predictor.restore(checkpoint)
        assert predictor.gshare.ghr == checkpoint.ghr
        assert predictor.ras.pop() == 0x1234

    def test_jalr_return_uses_ras(self):
        predictor = BranchPredictor(MEGA_BOOM)
        predictor.on_call(0x4444)
        target = predictor.predict_jalr_target(
            0x1000, is_return=True, is_call=False, next_pc=0x1004)
        assert target == 0x4444

    def test_jalr_indirect_uses_btb(self):
        predictor = BranchPredictor(MEGA_BOOM)
        assert predictor.predict_jalr_target(
            0x1000, is_return=False, is_call=False, next_pc=0x1004) is None
        predictor.train_indirect(0x1000, 0x8000)
        assert predictor.predict_jalr_target(
            0x1000, is_return=False, is_call=False, next_pc=0x1004) == 0x8000

    def test_call_pushes_return_address(self):
        predictor = BranchPredictor(MEGA_BOOM)
        predictor.predict_jalr_target(
            0x1000, is_return=False, is_call=True, next_pc=0x1004)
        assert predictor.ras.pop() == 0x1004

    def test_train_branch_updates_btb_for_taken(self):
        predictor = BranchPredictor(MEGA_BOOM)
        predictor.train_branch(0x1000, True, 0x2000, ghr_at_predict=0)
        assert predictor.btb.lookup(0x1000) == 0x2000
        predictor.train_branch(0x1100, False, 0x2100, ghr_at_predict=0)
        assert predictor.btb.lookup(0x1100) is None

    def test_loop_branch_learns_per_history(self):
        """Repeated training under one history context flips the prediction."""
        predictor = BranchPredictor(MEGA_BOOM)
        pc = 0x1000
        history = 0b1011
        for _ in range(4):
            predictor.gshare.ghr = history
            predictor.train_branch(pc, True, pc - 32, ghr_at_predict=history)
        predictor.gshare.ghr = history
        taken, ghr = predictor.predict_branch(pc)
        assert taken is True
        assert ghr == history
